// Tests for the TreeArtifactCache (service/tree_cache.h): hit/miss/busy-miss
// accounting, LRU eviction under the byte budget, lease pinning, and
// cross-job reuse correctness through ProfileWithTreeCache and the
// profiling service.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/gordian.h"
#include "core/pipeline.h"
#include "core/prefix_tree.h"
#include "datagen/synthetic.h"
#include "service/profiling_service.h"
#include "service/tree_cache.h"
#include "table/fingerprint.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed, int columns = 5) {
  SyntheticSpec spec = UniformSpec(columns, rows, 32, 0.4, seed);
  spec.columns[0].cardinality = 256;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

// Builds the prefix tree the default plan would build for (table, options).
std::unique_ptr<PrefixTree> BuildTree(const Table& t,
                                      const GordianOptions& opt) {
  ProfileSession session(opt);
  KeyDiscoveryResult r;
  EXPECT_TRUE(session.Run(t, &r).ok());
  std::unique_ptr<PrefixTree> tree = session.TakeTree();
  EXPECT_NE(tree, nullptr);
  return tree;
}

// The byte footprint one cache entry for `tree` will occupy: the pool's
// bytes plus (when freezing is on) the flat layout admitted alongside.
// The budget-sensitive tests below size their caches in this unit.
int64_t EntryFootprint(const PrefixTree& tree) {
  int64_t bytes = const_cast<PrefixTree&>(tree).pool().current_bytes();
  if (FrozenTreesEnabled()) bytes += FrozenTree::Freeze(tree)->ApproxBytes();
  return bytes;
}

TEST(TreeCacheKeyTest, DistinguishesTreeShapingOptions) {
  GordianOptions base;
  TreeCacheKey a = MakeTreeCacheKey(1, 5, base);
  EXPECT_EQ(a, MakeTreeCacheKey(1, 5, base));
  EXPECT_FALSE(a == MakeTreeCacheKey(2, 5, base));
  EXPECT_FALSE(a == MakeTreeCacheKey(1, 4, base));

  GordianOptions other = base;
  other.tree_build = GordianOptions::TreeBuild::kInsertion;
  EXPECT_FALSE(a == MakeTreeCacheKey(1, 5, other));

  other = base;
  other.attribute_order = GordianOptions::AttributeOrder::kSchema;
  EXPECT_FALSE(a == MakeTreeCacheKey(1, 5, other));

  other = base;
  other.sample_rows = 100;
  EXPECT_FALSE(a == MakeTreeCacheKey(1, 5, other));

  // Budget/pruning knobs do not change the tree: keys must collide so the
  // artifact is shared across them.
  other = base;
  other.max_non_keys = 10;
  other.futility_pruning = false;
  other.time_budget_seconds = 1.0;
  EXPECT_EQ(a, MakeTreeCacheKey(1, 5, other));

  // The sample seed only matters when sampling is on.
  other = base;
  other.sample_seed = 999;
  EXPECT_EQ(a, MakeTreeCacheKey(1, 5, other));
}

TEST(TreeCacheTest, MissInsertHitLifecycle) {
  Table t = MakeTable(1000, 3);
  GordianOptions opt;
  TreeCacheKey key = MakeTreeCacheKey(TableFingerprint(t), t.num_columns(), opt);

  TreeArtifactCache cache;
  EXPECT_FALSE(cache.Acquire(key).valid());  // miss
  {
    TreeArtifactCache::Lease lease = cache.Insert(key, BuildTree(t, opt));
    ASSERT_TRUE(lease.valid());
    EXPECT_NE(lease.tree(), nullptr);

    // While leased, a second acquire is a busy miss.
    EXPECT_FALSE(cache.Acquire(key).valid());
  }
  EXPECT_TRUE(cache.Contains(key));
  {
    TreeArtifactCache::Lease lease = cache.Acquire(key);
    EXPECT_TRUE(lease.valid());  // hit
  }

  TreeArtifactCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.busy_misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.insertions, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_GT(s.bytes, 0);

  cache.Clear();
  EXPECT_FALSE(cache.Contains(key));
  EXPECT_EQ(cache.GetStats().entries, 0);
}

TEST(TreeCacheTest, EvictsLeastRecentlyUsedUnderByteBudget) {
  Table t = MakeTable(1200, 5);
  GordianOptions opt;
  std::unique_ptr<PrefixTree> t1 = BuildTree(t, opt);
  std::unique_ptr<PrefixTree> t2 = BuildTree(t, opt);
  std::unique_ptr<PrefixTree> t3 = BuildTree(t, opt);
  const int64_t one = EntryFootprint(*t1);
  ASSERT_GT(one, 0);

  // Budget fits two trees but not three; distinct fingerprints keep the
  // entries separate.
  TreeArtifactCache cache(2 * one);
  TreeCacheKey k1 = MakeTreeCacheKey(1, t.num_columns(), opt);
  TreeCacheKey k2 = MakeTreeCacheKey(2, t.num_columns(), opt);
  TreeCacheKey k3 = MakeTreeCacheKey(3, t.num_columns(), opt);
  cache.Insert(k1, std::move(t1)).Release();
  cache.Insert(k2, std::move(t2)).Release();
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_TRUE(cache.Contains(k2));

  // Touch k1 so k2 becomes the LRU victim.
  cache.Acquire(k1).Release();
  cache.Insert(k3, std::move(t3)).Release();
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_FALSE(cache.Contains(k2));
  EXPECT_TRUE(cache.Contains(k3));

  TreeArtifactCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.entries, 2);
  EXPECT_LE(s.bytes, cache.byte_budget());
}

TEST(TreeCacheTest, LeasedEntriesAreNeverEvicted) {
  Table t = MakeTable(1200, 7);
  GordianOptions opt;
  std::unique_ptr<PrefixTree> t1 = BuildTree(t, opt);
  std::unique_ptr<PrefixTree> t2 = BuildTree(t, opt);
  const int64_t one = EntryFootprint(*t1);

  // Budget fits only one tree.
  TreeArtifactCache cache(one);
  TreeCacheKey k1 = MakeTreeCacheKey(1, t.num_columns(), opt);
  TreeCacheKey k2 = MakeTreeCacheKey(2, t.num_columns(), opt);

  TreeArtifactCache::Lease pinned = cache.Insert(k1, std::move(t1));
  ASSERT_TRUE(pinned.valid());
  TreeArtifactCache::Lease second = cache.Insert(k2, std::move(t2));
  ASSERT_TRUE(second.valid());

  // Resident bytes are twice the budget, but both entries are leased:
  // eviction must defer rather than touch a pinned entry.
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_TRUE(cache.Contains(k2));
  EXPECT_EQ(cache.GetStats().evictions, 0);

  // Releasing k2 makes it the only evictable entry; the deferred eviction
  // reclaims it while k1 stays pinned.
  second.Release();
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_FALSE(cache.Contains(k2));
  EXPECT_EQ(cache.GetStats().evictions, 1);

  // After the pin drops, the survivor fits the budget and stays resident.
  pinned.Release();
  EXPECT_TRUE(cache.Contains(k1));
  EXPECT_LE(cache.GetStats().bytes, cache.byte_budget());
}

TEST(TreeCacheTest, OversizedArtifactIsServedButNotAdmitted) {
  Table t = MakeTable(1200, 9);
  GordianOptions opt;
  std::unique_ptr<PrefixTree> tree = BuildTree(t, opt);
  PrefixTree* raw = tree.get();

  TreeArtifactCache cache(/*byte_budget=*/1);
  TreeCacheKey key = MakeTreeCacheKey(1, t.num_columns(), opt);
  TreeArtifactCache::Lease lease = cache.Insert(key, std::move(tree));
  // The inserting job still gets its tree...
  ASSERT_TRUE(lease.valid());
  EXPECT_EQ(lease.tree(), raw);
  lease.Release();
  // ...but the cache never admits it.
  EXPECT_FALSE(cache.Contains(key));
  TreeArtifactCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.insertions, 0);
  EXPECT_EQ(s.entries, 0);
}

TEST(TreeCacheTest, ProfileWithTreeCacheReusesTreeAndMatchesFindKeys) {
  Table t = MakeTable(2000, 11);
  GordianOptions opt;
  opt.traversal_threads = -1;
  const uint64_t fp = TableFingerprint(t);
  KeyDiscoveryResult baseline = FindKeys(t, opt);

  TreeArtifactCache cache;
  bool hit = true;
  KeyDiscoveryResult cold = ProfileWithTreeCache(t, opt, fp, &cache, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, cold));

  // Repeated runs hit the cache and stay byte-identical — the reused tree
  // comes back pristine every time.
  for (int round = 0; round < 3; ++round) {
    std::vector<StageMetric> metrics;
    KeyDiscoveryResult warm =
        ProfileWithTreeCache(t, opt, fp, &cache, &hit, &metrics);
    EXPECT_TRUE(hit);
    EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, warm));
    // The tree_build stage still runs on a hit (duplicate-entity check,
    // node-count stats) but skips the build itself, so every stage is
    // present in the metrics.
    EXPECT_EQ(metrics.size(), 5u);
  }
  EXPECT_EQ(cache.GetStats().hits, 3);

  // A different budget profile of the same table shares the artifact.
  GordianOptions budget = opt;
  budget.max_non_keys = 1000000;
  KeyDiscoveryResult other = ProfileWithTreeCache(t, budget, fp, &cache, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, other));

  // With no cache this is plain FindKeys.
  KeyDiscoveryResult plain = ProfileWithTreeCache(t, opt, fp, nullptr, &hit);
  EXPECT_FALSE(hit);
  EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, plain));
}

TEST(TreeCacheTest, ServiceJobsReuseTreesAcrossRepeatedProfiles) {
  Table t = MakeTable(2000, 13);
  GordianOptions ref;
  ref.traversal_threads = -1;
  KeyDiscoveryResult baseline = FindKeys(t, ref);

  ServiceOptions sopt;
  sopt.num_threads = 2;
  ProfilingService service(sopt);

  // use_catalog=false forces every job through discovery; only the tree
  // artifact is shared. Sequential waits keep the jobs from coalescing.
  ProfileJobOptions jopt;
  jopt.use_catalog = false;
  ProfileOutcome first = service.Wait(service.SubmitTable("t", &t, jopt));
  EXPECT_FALSE(first.tree_cache_hit);
  EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, first.result));

  for (int round = 0; round < 3; ++round) {
    ProfileOutcome again = service.Wait(service.SubmitTable("t", &t, jopt));
    EXPECT_TRUE(again.tree_cache_hit);
    EXPECT_FALSE(again.cache_hit);
    EXPECT_EQ(FormatResult(t, baseline), FormatResult(t, again.result));
  }

  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.tree_cache_hits, 3);
  EXPECT_EQ(m.tree_cache_misses, 1);
  ASSERT_NE(service.tree_cache(), nullptr);
  EXPECT_EQ(service.tree_cache()->GetStats().hits, 3);

  // Per-stage metrics accumulated across all four discovery runs.
  EXPECT_EQ(m.stage_runs[2], 4);  // "traverse"
  EXPECT_EQ(m.stage_runs[1], 4);  // "tree_build" (a hit skips only Build)
}

TEST(TreeCacheTest, ConcurrentJobsOnIdenticalTablesStayCorrect) {
  // Identical content generated twice: same fingerprint, distinct Table
  // objects (so the service cannot coalesce them). Concurrent jobs race on
  // the one cached artifact; exclusive leases make losers build privately,
  // and every result must still match.
  Table a = MakeTable(1500, 17);
  Table b = MakeTable(1500, 17);
  ASSERT_EQ(TableFingerprint(a), TableFingerprint(b));
  GordianOptions ref;
  ref.traversal_threads = -1;
  const std::string expected = FormatResult(a, FindKeys(a, ref));

  ServiceOptions sopt;
  sopt.num_threads = 4;
  ProfilingService service(sopt);
  ProfileJobOptions jopt;
  jopt.use_catalog = false;

  std::vector<JobId> ids;
  for (int i = 0; i < 12; ++i) {
    ids.push_back(
        service.SubmitTable("t", i % 2 == 0 ? &a : &b, jopt));
  }
  for (JobId id : ids) {
    ProfileOutcome out = service.Wait(id);
    EXPECT_EQ(expected, FormatResult(a, out.result));
  }
}

TEST(TreeCacheTest, ServiceTreeCacheCanBeDisabled) {
  Table t = MakeTable(1000, 19);
  ServiceOptions sopt;
  sopt.num_threads = 1;
  sopt.tree_cache_bytes = 0;
  ProfilingService service(sopt);
  EXPECT_EQ(service.tree_cache(), nullptr);

  ProfileJobOptions jopt;
  jopt.use_catalog = false;
  for (int i = 0; i < 2; ++i) {
    ProfileOutcome out = service.Wait(service.SubmitTable("t", &t, jopt));
    EXPECT_FALSE(out.tree_cache_hit);
  }
  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.tree_cache_hits, 0);
  EXPECT_EQ(m.tree_cache_misses, 0);
}

}  // namespace
}  // namespace gordian
