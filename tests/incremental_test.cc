// Append-equivalence oracle suite for incremental discovery.
//
// The property under test: profiling incrementally — absorb each delta
// batch into the standing prefix tree, re-traverse warm-started from the
// prior non-keys — produces, after every batch, a report byte-identical to
// a from-scratch FindKeys over the concatenated table. The oracle is fuzzed
// over randomized schemas/datasets and the full execution matrix
// (serial/parallel x frozen/pointer x warm on/off), plus directed tests for
// cancellation mid-absorb, budget aborts, spilled base tables, the
// monotonicity property, the service's AppendAndReprofile path, and the
// streaming profiler's keys-current mode and ingest accounting.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/gordian.h"
#include "core/incremental.h"
#include "core/report.h"
#include "core/streaming.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"
#include "table/table.h"

namespace gordian {
namespace {

uint64_t Next(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

// Iteration count for the fuzz loops; CI's nightly-style leg raises it via
// the environment (GORDIAN_FUZZ_ITERS=20 ctest -L incremental).
int FuzzIters() {
  const char* env = std::getenv("GORDIAN_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 3;
}

Schema MakeSchema(int num_columns) {
  std::vector<std::string> names;
  for (int c = 0; c < num_columns; ++c) names.push_back("c" + std::to_string(c));
  return Schema(names);
}

// One random entity. Column 0 is a near-id (unique-ish, occasionally
// repeated); the rest cycle through low-cardinality ints, strings with
// NULLs, and doubles — enough structure for composite keys, genuine
// non-keys, and growing dictionaries.
std::vector<Value> RandomRow(int num_columns, int64_t row_index,
                             uint64_t* state) {
  std::vector<Value> row;
  row.reserve(static_cast<size_t>(num_columns));
  for (int c = 0; c < num_columns; ++c) {
    switch (c % 4) {
      case 0:
        // ~1 in 8 rows reuses an earlier id, so column 0 alone is usually
        // not a key and composites matter.
        row.emplace_back(static_cast<int64_t>(
            Next(state) % 8 == 0 ? Next(state) % (row_index + 1)
                                 : row_index));
        break;
      case 1:
        row.emplace_back(static_cast<int64_t>(Next(state) % 5));
        break;
      case 2:
        if (Next(state) % 11 == 0) {
          row.emplace_back();  // NULL
        } else {
          row.emplace_back("s" + std::to_string(Next(state) % 17));
        }
        break;
      default:
        row.emplace_back(static_cast<double>(Next(state) % 7) / 2);
        break;
    }
  }
  return row;
}

RowBatch MakeBatch(int num_columns, int64_t rows, int64_t first_row_index,
                   uint64_t* state) {
  RowBatch batch(num_columns);
  for (int64_t i = 0; i < rows; ++i) {
    batch.AppendRow(RandomRow(num_columns, first_row_index + i, state));
  }
  return batch;
}

Table Concat(const Schema& schema, const std::vector<RowBatch>& batches) {
  TableBuilder b(schema);
  for (const RowBatch& batch : batches) b.AddBatch(batch);
  return b.Build();
}

// Report with run-dependent stats zeroed: byte-identical over everything
// discovery can observe (keys, strengths, non-keys, abort state).
std::string Canon(const Table& t, KeyDiscoveryResult r) {
  r.stats = GordianStats{};
  DatabaseProfile p;
  p.tables.push_back({"t", &t, std::move(r)});
  return ProfileToJson(p);
}

// The from-scratch oracle is pinned to the most basic execution mode —
// serial pointer-tree, cold — so every incremental configuration is
// compared against one fixed baseline.
KeyDiscoveryResult Oracle(const Table& t) {
  GordianOptions opts;
  opts.traversal_threads = -1;
  opts.frozen_traversal = false;
  return FindKeys(t, opts);
}

// ---------------------------------------------------------------------------
// The core oracle, fuzzed over the execution matrix.

TEST(AppendEquivalence, IncrementalMatchesFromScratchAcrossMatrix) {
  const int iters = FuzzIters();
  for (int iter = 0; iter < iters; ++iter) {
    uint64_t state = 0x9e3779b9u * static_cast<uint64_t>(iter + 1);
    const int num_columns = 2 + static_cast<int>(Next(&state) % 4);  // 2..5
    const Schema schema = MakeSchema(num_columns);
    const int64_t base_rows = 1 + static_cast<int64_t>(Next(&state) % 400);
    const int num_batches = 1 + static_cast<int>(Next(&state) % 3);

    // Batch sizes span the issue's 1..4096 envelope: the first iteration
    // always includes a 4096-row batch, later ones stay small for speed.
    std::vector<RowBatch> batches;
    batches.push_back(MakeBatch(num_columns, base_rows, 0, &state));
    int64_t rows_so_far = base_rows;
    for (int b = 0; b < num_batches; ++b) {
      const int64_t n =
          (iter == 0 && b == 0)
              ? 4096
              : 1 + static_cast<int64_t>(Next(&state) % 256);
      batches.push_back(MakeBatch(num_columns, n, rows_so_far, &state));
      rows_so_far += n;
    }

    const Table base = Concat(schema, {batches[0]});

    for (int threads : {-1, 2}) {
      for (bool frozen : {false, true}) {
        for (bool warm : {false, true}) {
          SCOPED_TRACE("iter=" + std::to_string(iter) +
                       " threads=" + std::to_string(threads) +
                       " frozen=" + std::to_string(frozen) +
                       " warm=" + std::to_string(warm));
          GordianOptions opts;
          opts.traversal_threads = threads;
          opts.frozen_traversal = frozen;
          IncrementalProfiler prof;
          ASSERT_TRUE(IncrementalProfiler::Begin(base, opts, &prof).ok());
          prof.set_warm_start(warm);

          std::vector<RowBatch> prefix = {batches[0]};
          for (size_t b = 1; b < batches.size(); ++b) {
            ASSERT_TRUE(prof.Append(batches[b]).ok());
            prefix.push_back(batches[b]);
            const Table concat = Concat(schema, prefix);
            EXPECT_EQ(prof.fingerprint(), TableFingerprint(concat));
            EXPECT_TRUE(prof.current());
            EXPECT_EQ(Canon(concat, prof.report()),
                      Canon(concat, Oracle(concat)));
          }
        }
      }
    }
  }
}

// Absorb/Refresh coalescing: several Absorbs followed by one Refresh equal
// the same batches appended one at a time.
TEST(AppendEquivalence, CoalescedAbsorbsMatchPerBatchAppends) {
  uint64_t state = 77;
  const Schema schema = MakeSchema(3);
  std::vector<RowBatch> batches;
  int64_t rows = 0;
  for (int b = 0; b < 4; ++b) {
    const int64_t n = 50 + static_cast<int64_t>(Next(&state) % 100);
    batches.push_back(MakeBatch(3, n, rows, &state));
    rows += n;
  }
  const Table base = Concat(schema, {batches[0]});

  IncrementalProfiler coalesced, per_batch;
  ASSERT_TRUE(IncrementalProfiler::Begin(base, {}, &coalesced).ok());
  ASSERT_TRUE(IncrementalProfiler::Begin(base, {}, &per_batch).ok());
  for (size_t b = 1; b < batches.size(); ++b) {
    ASSERT_TRUE(coalesced.Absorb(batches[b]).ok());
    ASSERT_TRUE(per_batch.Append(batches[b]).ok());
  }
  EXPECT_FALSE(coalesced.current());
  ASSERT_TRUE(coalesced.Refresh().ok());
  EXPECT_TRUE(coalesced.current());

  const Table concat = Concat(schema, batches);
  EXPECT_EQ(coalesced.fingerprint(), per_batch.fingerprint());
  EXPECT_EQ(Canon(concat, coalesced.report()),
            Canon(concat, per_batch.report()));
  EXPECT_EQ(Canon(concat, coalesced.report()), Canon(concat, Oracle(concat)));
}

// Spilled base tables: AppendState::Begin reads codes back through the
// GRDL mapping; everything downstream must be identical to a resident base.
TEST(AppendEquivalence, SpilledBaseTableMatchesResident) {
  const std::string dir = ::testing::TempDir() + "gordian_inc_spill_" +
                          std::to_string(::getpid());
  ASSERT_TRUE(DefaultFileSystem()->CreateDir(dir).ok());
  uint64_t state = 5;
  const Schema schema = MakeSchema(4);
  std::vector<RowBatch> batches = {MakeBatch(4, 3000, 0, &state),
                                   MakeBatch(4, 200, 3000, &state)};

  SpillPolicy spill;
  spill.memory_budget_bytes = 1 << 10;
  spill.spill_dir = dir;
  spill.chunk_rows = 512;
  TableBuilder spilling(schema, spill);
  spilling.AddBatch(batches[0]);
  Table spilled_base;
  ASSERT_TRUE(spilling.Build(&spilled_base).ok());
  ASSERT_EQ(spilled_base.spilled_column_count(), spilled_base.num_columns());

  IncrementalProfiler prof;
  ASSERT_TRUE(IncrementalProfiler::Begin(spilled_base, {}, &prof).ok());
  ASSERT_TRUE(prof.Append(batches[1]).ok());

  const Table concat = Concat(schema, batches);
  EXPECT_EQ(prof.fingerprint(), TableFingerprint(concat));
  EXPECT_EQ(Canon(concat, prof.report()), Canon(concat, Oracle(concat)));
}

// ---------------------------------------------------------------------------
// Monotonicity: appends only create non-keys, never retract one.

TEST(Monotonicity, PriorNonKeysStayCoveredAfterEveryBatch) {
  const int iters = FuzzIters();
  for (int iter = 0; iter < iters; ++iter) {
    uint64_t state = 1234u + static_cast<uint64_t>(iter);
    const Schema schema = MakeSchema(4);
    std::vector<RowBatch> prefix = {MakeBatch(4, 120, 0, &state)};
    IncrementalProfiler prof;
    ASSERT_TRUE(
        IncrementalProfiler::Begin(Concat(schema, prefix), {}, &prof).ok());

    int64_t rows = 120;
    std::vector<AttributeSet> prior = prof.report().non_keys;
    for (int b = 0; b < 3; ++b) {
      const int64_t n = 1 + static_cast<int64_t>(Next(&state) % 200);
      ASSERT_TRUE(prof.Append(MakeBatch(4, n, rows, &state)).ok());
      rows += n;
      // Every prior maximal non-key must still be covered by some maximal
      // non-key of the grown table: duplicates on a projection cannot
      // disappear by adding rows.
      const std::vector<AttributeSet>& now = prof.report().non_keys;
      for (const AttributeSet& old_nk : prior) {
        bool covered = false;
        for (const AttributeSet& nk : now) {
          if (nk.Covers(old_nk)) {
            covered = true;
            break;
          }
        }
        EXPECT_TRUE(covered) << "batch " << b << ": prior non-key "
                             << old_nk.ToString() << " no longer covered";
      }
      prior = now;
    }
  }
}

TEST(Monotonicity, ShrinkingDeltaSeedsAreRejectedWithClearStatus) {
  // "Grown" table: two rows duplicated on {0,1}, so {0,1} is a non-key.
  TableBuilder grown_b(MakeSchema(2));
  grown_b.AddRow({Value(int64_t{1}), Value("x")});
  grown_b.AddRow({Value(int64_t{1}), Value("x")});
  grown_b.AddRow({Value(int64_t{2}), Value("y")});
  Table grown = grown_b.Build();
  IncrementalProfiler grown_prof;
  ASSERT_TRUE(IncrementalProfiler::Begin(grown, {}, &grown_prof).ok());
  std::vector<AttributeSet> grown_non_keys = grown_prof.report().non_keys;
  ASSERT_FALSE(grown_non_keys.empty());

  // "Shrunk" table: the duplicate row was removed, so {0,1} is unique and
  // the old non-keys are no longer sound seeds.
  TableBuilder shrunk_b(MakeSchema(2));
  shrunk_b.AddRow({Value(int64_t{1}), Value("x")});
  shrunk_b.AddRow({Value(int64_t{2}), Value("y")});
  Table shrunk = shrunk_b.Build();
  IncrementalProfiler shrunk_prof;
  ASSERT_TRUE(IncrementalProfiler::Begin(shrunk, {}, &shrunk_prof).ok());

  Status s = shrunk_prof.SeedWarmStart(grown_non_keys);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.ToString().find("unique"), std::string::npos) << s.ToString();

  // The rejection left the profiler sound: a subsequent append still
  // matches the oracle (the bad seeds were not installed).
  RowBatch delta(2);
  delta.AppendRow({Value(int64_t{3}), Value("x")});
  ASSERT_TRUE(shrunk_prof.Append(delta).ok());
  TableBuilder concat_b(MakeSchema(2));
  concat_b.AddRow({Value(int64_t{1}), Value("x")});
  concat_b.AddRow({Value(int64_t{2}), Value("y")});
  concat_b.AddRow({Value(int64_t{3}), Value("x")});
  Table concat = concat_b.Build();
  EXPECT_EQ(Canon(concat, shrunk_prof.report()),
            Canon(concat, Oracle(concat)));

  // Seeds from this profiler's own past ARE sound and are accepted.
  EXPECT_TRUE(shrunk_prof.SeedWarmStart(shrunk_prof.report().non_keys).ok());
}

// ---------------------------------------------------------------------------
// Cancellation and budgets mid-append: the tree must stay valid.

TEST(AppendAborts, CancelMidAbsorbLeavesValidTreeAndResumes) {
  uint64_t state = 31;
  const Schema schema = MakeSchema(3);
  std::vector<RowBatch> batches = {MakeBatch(3, 300, 0, &state),
                                   MakeBatch(3, 600, 300, &state)};
  std::atomic<bool> cancel{false};
  GordianOptions opts;
  opts.cancel_flag = &cancel;
  IncrementalProfiler prof;
  ASSERT_TRUE(
      IncrementalProfiler::Begin(Concat(schema, {batches[0]}), opts, &prof)
          .ok());

  // Cancel before the absorb starts: no delta row enters the tree, the
  // report says incomplete/kCancelled, and the profiler stays consistent.
  cancel.store(true);
  ASSERT_TRUE(prof.Append(batches[1]).ok());
  EXPECT_FALSE(prof.current());
  EXPECT_TRUE(prof.report().incomplete);
  EXPECT_EQ(prof.report().incomplete_reason, AbortReason::kCancelled);
  EXPECT_LT(prof.tree_rows(), prof.num_rows());

  // Clearing the flag and refreshing resumes from where the absorb stopped
  // and converges to the oracle.
  cancel.store(false);
  ASSERT_TRUE(prof.Refresh().ok());
  EXPECT_TRUE(prof.current());
  EXPECT_EQ(prof.tree_rows(), prof.num_rows());
  const Table concat = Concat(schema, batches);
  EXPECT_EQ(prof.fingerprint(), TableFingerprint(concat));
  EXPECT_EQ(Canon(concat, prof.report()), Canon(concat, Oracle(concat)));
}

TEST(AppendAborts, NonKeyBudgetAbortKeepsProfilerUsable) {
  uint64_t state = 13;
  const Schema schema = MakeSchema(5);
  std::vector<RowBatch> batches = {MakeBatch(5, 400, 0, &state),
                                   MakeBatch(5, 100, 400, &state)};
  GordianOptions opts;
  opts.max_non_keys = 1;  // trips almost immediately on this data
  IncrementalProfiler prof;
  ASSERT_TRUE(
      IncrementalProfiler::Begin(Concat(schema, {batches[0]}), opts, &prof)
          .ok());

  ASSERT_TRUE(prof.Append(batches[1]).ok());
  // The search budget keeps the run incomplete, but the append-side state
  // is exact: every row is in the tree and the fingerprint is current.
  const Table concat = Concat(schema, batches);
  EXPECT_EQ(prof.fingerprint(), TableFingerprint(concat));
  EXPECT_EQ(prof.tree_rows(), prof.num_rows());
  if (prof.report().incomplete) {
    EXPECT_EQ(prof.report().incomplete_reason, AbortReason::kNonKeyBudget);
    EXPECT_TRUE(prof.report().keys.empty());
  }
}

// ---------------------------------------------------------------------------
// Fingerprint accumulator: O(delta) maintenance equals the full recompute.

TEST(FingerprintAccumulator, MatchesTableFingerprintAfterEveryBatch) {
  uint64_t state = 8;
  const Schema schema = MakeSchema(4);
  std::vector<RowBatch> prefix = {MakeBatch(4, 100, 0, &state)};
  AppendState append_state;
  ASSERT_TRUE(
      AppendState::Begin(Concat(schema, prefix), &append_state).ok());
  int64_t rows = 100;
  for (int b = 0; b < 4; ++b) {
    const int64_t n = 1 + static_cast<int64_t>(Next(&state) % 300);
    RowBatch batch = MakeBatch(4, n, rows, &state);
    rows += n;
    ASSERT_TRUE(append_state.Absorb(batch).ok());
    prefix.push_back(std::move(batch));
    const Table concat = Concat(schema, prefix);
    EXPECT_EQ(append_state.fingerprint(), TableFingerprint(concat))
        << "batch " << b;
    EXPECT_EQ(TableFingerprint(append_state.Snapshot()),
              TableFingerprint(concat));
  }
  // Column-count mismatch is rejected before any state changes.
  RowBatch bad(3);
  bad.AppendRow({Value(int64_t{1}), Value(int64_t{2}), Value(int64_t{3})});
  const uint64_t before = append_state.fingerprint();
  EXPECT_EQ(append_state.Absorb(bad).code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(append_state.fingerprint(), before);
}

// ---------------------------------------------------------------------------
// Service: RegisterAppendable / AppendAndReprofile.

TEST(ServiceAppend, AppendAndReprofileChainsAndCatalogs) {
  uint64_t state = 21;
  const Schema schema = MakeSchema(3);
  std::vector<RowBatch> batches = {MakeBatch(3, 200, 0, &state),
                                   MakeBatch(3, 80, 200, &state),
                                   MakeBatch(3, 50, 280, &state)};
  const Table base = Concat(schema, {batches[0]});

  ServiceOptions soptions;
  soptions.num_threads = 2;
  ProfilingService service(soptions);

  uint64_t fp = 0;
  ASSERT_TRUE(service.RegisterAppendable("t", base, {}, &fp).ok());
  EXPECT_EQ(fp, TableFingerprint(base));
  EXPECT_TRUE(service.catalog().Contains(fp));

  std::vector<RowBatch> prefix = {batches[0]};
  uint64_t head = fp;
  for (size_t b = 1; b < batches.size(); ++b) {
    AppendOutcome out;
    ASSERT_TRUE(service.AppendAndReprofile(head, batches[b], &out).ok());
    prefix.push_back(batches[b]);
    const Table concat = Concat(schema, prefix);
    EXPECT_EQ(out.fingerprint, TableFingerprint(concat));
    // The base tree was admitted at registration and never contended here,
    // so every append takes the absorb fast path.
    EXPECT_TRUE(out.tree_absorbed);
    EXPECT_FALSE(out.result.incomplete);
    EXPECT_EQ(Canon(concat, out.result), Canon(concat, Oracle(concat)));
    EXPECT_TRUE(service.catalog().Contains(out.fingerprint));
    head = out.fingerprint;
  }

  // Stale/unknown handles: the chain has advanced past the original
  // fingerprint, so it is simply no longer registered.
  AppendOutcome out;
  EXPECT_EQ(service.AppendAndReprofile(fp, batches[1], &out).code(),
            Status::Code::kNotFound);
  EXPECT_EQ(service.AppendAndReprofile(0xdeadbeef, batches[1], &out).code(),
            Status::Code::kNotFound);

  const ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.appends, 2);
  EXPECT_EQ(m.append_absorbs, 2);
  EXPECT_EQ(m.delta_rows, 130);
  ASSERT_NE(service.tree_cache(), nullptr);
  EXPECT_EQ(service.tree_cache()->GetStats().rekeys, 2);

  // Warm start engaged: the second append was seeded from the first's
  // non-keys (counted only when the traversal actually pruned off them,
  // so assert the seed made it through rather than a specific count).
  EXPECT_GE(m.warm_start_prunes, 0);

  // Sampling cannot be registered (re-sampling is not append-monotone).
  GordianOptions sampling;
  sampling.sample_rows = 16;
  EXPECT_EQ(service.RegisterAppendable("s", base, sampling, nullptr).code(),
            Status::Code::kInvalidArgument);
}

// The lease regression: a read-only Profile of the same fingerprint racing
// an AppendAndReprofile must never see a half-absorbed tree. Exercised here
// (and under TSan in CI) by racing the two paths over identical content.
TEST(ServiceAppend, ConcurrentProfileNeverSeesHalfAbsorbedTree) {
  uint64_t state = 42;
  const Schema schema = MakeSchema(3);
  const int rounds = FuzzIters();
  for (int round = 0; round < rounds; ++round) {
    std::vector<RowBatch> batches = {
        MakeBatch(3, 300, 0, &state),
        MakeBatch(3, 120, 300, &state),
    };
    const Table base = Concat(schema, {batches[0]});
    const Table concat = Concat(schema, batches);

    ServiceOptions soptions;
    soptions.num_threads = 2;
    ProfilingService service(soptions);
    uint64_t fp = 0;
    ASSERT_TRUE(service.RegisterAppendable("t", base, {}, &fp).ok());

    // The read-only job profiles a private table with the SAME fingerprint
    // as the chain's base: if it wins the lease the append falls back to a
    // snapshot rebuild; if the append wins, the job busy-misses and builds
    // privately. Either interleaving must produce oracle-exact results.
    ProfileJobOptions job;
    job.use_catalog = false;  // force discovery, not a catalog hit
    JobId id = service.SubmitTable("t_reader", &base, job);

    AppendOutcome out;
    ASSERT_TRUE(service.AppendAndReprofile(fp, batches[1], &out).ok());

    ProfileOutcome reader = service.Wait(id);
    ASSERT_EQ(reader.info.state, JobState::kSucceeded);
    EXPECT_EQ(Canon(base, reader.result), Canon(base, Oracle(base)));
    EXPECT_EQ(Canon(concat, out.result), Canon(concat, Oracle(concat)));
    EXPECT_EQ(out.fingerprint, TableFingerprint(concat));
  }
}

// ---------------------------------------------------------------------------
// StreamingProfiler: keys-current mode and ingest accounting.

TEST(KeysCurrent, FullModeTracksOracleAcrossBatches) {
  uint64_t state = 63;
  const Schema schema = MakeSchema(3);
  std::vector<RowBatch> batches;
  int64_t rows = 0;
  for (int b = 0; b < 4; ++b) {
    const int64_t n = 40 + static_cast<int64_t>(Next(&state) % 120);
    batches.push_back(MakeBatch(3, n, rows, &state));
    rows += n;
  }

  StreamingProfiler profiler(schema);
  profiler.AddBatch(batches[0]);
  // Enabled mid-stream: rows ingested so far become the incremental base.
  ASSERT_TRUE(profiler.EnableKeysCurrent().ok());
  EXPECT_TRUE(profiler.keys_current());

  std::vector<RowBatch> prefix = {batches[0]};
  for (size_t b = 1; b < batches.size(); ++b) {
    profiler.AddBatch(batches[b]);
    prefix.push_back(batches[b]);
    ASSERT_TRUE(profiler.RefreshKeys().ok());
    const Table concat = Concat(schema, prefix);
    EXPECT_EQ(Canon(concat, profiler.current_report()),
              Canon(concat, Oracle(concat)));
  }

  // Row-at-a-time ingest flows through the same incremental engine.
  std::vector<Value> extra = RandomRow(3, rows, &state);
  profiler.AddRow(extra);
  ASSERT_TRUE(profiler.RefreshKeys().ok());
  TableBuilder concat_b(schema);
  for (const RowBatch& batch : batches) concat_b.AddBatch(batch);
  concat_b.AddRow(extra);
  const Table concat = concat_b.Build();
  EXPECT_EQ(Canon(concat, profiler.current_report()),
            Canon(concat, Oracle(concat)));

  // Finish returns the same (complete) report and resets the profiler.
  KeyDiscoveryResult finished;
  ASSERT_TRUE(profiler.Finish(&finished).ok());
  EXPECT_EQ(Canon(concat, finished), Canon(concat, Oracle(concat)));
  EXPECT_EQ(profiler.rows_seen(), 0);
  EXPECT_FALSE(profiler.keys_current());
  EXPECT_EQ(profiler.ingest_stats().rows, 0);
}

TEST(KeysCurrent, ReservoirModeRefreshesFromSample) {
  uint64_t state = 71;
  const Schema schema = MakeSchema(3);
  GordianOptions opts;
  opts.sample_rows = 64;
  StreamingProfiler profiler(schema, opts);
  ASSERT_TRUE(profiler.EnableKeysCurrent().ok());

  profiler.AddBatch(MakeBatch(3, 500, 0, &state));
  ASSERT_TRUE(profiler.RefreshKeys().ok());
  EXPECT_TRUE(profiler.current_report().sampled);
  // The refresh is a point-in-time view; ingest continues unaffected.
  profiler.AddBatch(MakeBatch(3, 500, 500, &state));
  EXPECT_EQ(profiler.rows_seen(), 1000);
  ASSERT_TRUE(profiler.RefreshKeys().ok());
  KeyDiscoveryResult finished;
  ASSERT_TRUE(profiler.Finish(&finished).ok());
  EXPECT_TRUE(finished.sampled);
}

TEST(KeysCurrent, RefreshWithoutEnableIsAnError) {
  StreamingProfiler profiler(MakeSchema(2));
  EXPECT_EQ(profiler.RefreshKeys().code(), Status::Code::kInvalidArgument);
}

// The ingest-accounting pin: rows are counted exactly once per public
// AddRow/AddBatch call — keys-current delta absorption and reservoir
// replacement must not double-count them.
TEST(IngestAccounting, CountersAreExactAcrossModes) {
  uint64_t state = 90;
  const Schema schema = MakeSchema(3);
  RowBatch b1 = MakeBatch(3, 100, 0, &state);
  RowBatch b2 = MakeBatch(3, 60, 100, &state);
  const int64_t want_bytes = b1.ByteSize() + b2.ByteSize();

  // Full mode with keys-current enabled: the batches flow through both the
  // public boundary and the incremental engine — counted once.
  StreamingProfiler full(schema);
  ASSERT_TRUE(full.EnableKeysCurrent().ok());
  full.AddBatch(b1);
  full.AddBatch(b2);
  full.AddRow(RandomRow(3, 160, &state));
  EXPECT_EQ(full.ingest_stats().batches, 2);
  EXPECT_EQ(full.ingest_stats().rows, 161);
  EXPECT_EQ(full.ingest_stats().bytes, want_bytes);

  // Reservoir mode: replacement re-encodes rows internally; still one
  // count per ingested row.
  GordianOptions sampled;
  sampled.sample_rows = 16;
  StreamingProfiler reservoir(schema, sampled);
  reservoir.AddBatch(b1);
  reservoir.AddBatch(b2);
  EXPECT_EQ(reservoir.ingest_stats().batches, 2);
  EXPECT_EQ(reservoir.ingest_stats().rows, 160);
  EXPECT_EQ(reservoir.ingest_stats().bytes, want_bytes);

  // ProfileCsvFile surfaces the profiler's accounting verbatim.
  const std::string dir = ::testing::TempDir();
  const std::string path =
      dir + "/gordian_ingest_" + std::to_string(::getpid()) + ".csv";
  std::string body = "a,b\n";
  for (int i = 0; i < 100; ++i) {
    body += std::to_string(i) + ",v" + std::to_string(i % 7) + "\n";
  }
  ASSERT_TRUE(DefaultFileSystem()->WriteFile(path, body).ok());
  KeyDiscoveryResult result;
  IngestStats stats;
  ASSERT_TRUE(
      ProfileCsvFile(path, CsvOptions{}, GordianOptions{}, &result, &stats)
          .ok());
  EXPECT_EQ(stats.rows, 100);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_GE(stats.batches, 1);
}

}  // namespace
}  // namespace gordian
