// Tests for the staged profiling pipeline (core/pipeline.h): the default
// plan must reproduce FindKeys byte-for-byte in serial and parallel
// traversal modes, shared-tree runs must match fresh runs and leave the
// injected tree reusable, and per-stage metrics must cover the executed
// stages.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/gordian.h"
#include "core/pipeline.h"
#include "core/prefix_tree.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed, int columns = 6) {
  SyntheticSpec spec = UniformSpec(columns, rows, 24, 0.4, seed);
  spec.columns[0].cardinality = 200;
  spec.columns[2].cardinality = 48;
  spec.planted_keys.push_back({0, 2});
  spec.planted_keys.push_back({1, 3, 4});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

// FormatResult-level equality is the PR's definition of "byte-identical
// report": keys, non-keys, strengths, and flags all feed the text.
void ExpectSameReport(const Table& table, const KeyDiscoveryResult& a,
                      const KeyDiscoveryResult& b) {
  EXPECT_EQ(FormatResult(table, a), FormatResult(table, b));
  EXPECT_EQ(a.no_keys, b.no_keys);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.incomplete, b.incomplete);
  ASSERT_EQ(a.non_keys.size(), b.non_keys.size());
  for (size_t i = 0; i < a.non_keys.size(); ++i) {
    EXPECT_EQ(a.non_keys[i], b.non_keys[i]);
  }
}

TEST(PipelineTest, DefaultPlanMatchesFindKeysSerial) {
  Table t = MakeTable(3000, 17);
  GordianOptions opt;
  opt.traversal_threads = -1;  // pin serial regardless of GORDIAN_THREADS
  KeyDiscoveryResult baseline = FindKeys(t, opt);

  ProfileSession session(opt);
  KeyDiscoveryResult piped;
  ASSERT_TRUE(session.Run(t, &piped).ok());
  ExpectSameReport(t, baseline, piped);
  EXPECT_EQ(baseline.stats.nodes_visited, piped.stats.nodes_visited);
  EXPECT_EQ(baseline.stats.merges_performed, piped.stats.merges_performed);
  EXPECT_EQ(baseline.stats.final_non_keys, piped.stats.final_non_keys);
}

TEST(PipelineTest, ParallelTraversalMatchesSerial) {
  Table t = MakeTable(3000, 23);
  GordianOptions serial;
  serial.traversal_threads = -1;
  KeyDiscoveryResult baseline = FindKeys(t, serial);

  GordianOptions par;
  par.traversal_threads = 8;
  ProfileSession session(par);
  KeyDiscoveryResult piped;
  ASSERT_TRUE(session.Run(t, &piped).ok());
  ExpectSameReport(t, baseline, piped);
}

TEST(PipelineTest, SharedTreeRunMatchesFreshRunAndTreeStaysReusable) {
  Table t = MakeTable(2500, 31);
  GordianOptions opt;
  opt.traversal_threads = -1;
  KeyDiscoveryResult baseline = FindKeys(t, opt);

  ProfileSession builder(opt);
  KeyDiscoveryResult first;
  ASSERT_TRUE(builder.Run(t, &first).ok());
  std::unique_ptr<PrefixTree> tree = builder.TakeTree();
  ASSERT_NE(tree, nullptr);
  const int64_t pristine_bytes = tree->pool().current_bytes();

  // Traversal temporarily mutates node refcounts on the shared tree; after
  // each run the tree must come back byte-identical, so it can serve an
  // unbounded sequence of runs.
  for (int round = 0; round < 3; ++round) {
    ProfileSession reuser(opt);
    reuser.set_shared_tree(tree.get());
    KeyDiscoveryResult reused;
    ASSERT_TRUE(reuser.Run(t, &reused).ok());
    ExpectSameReport(t, baseline, reused);
    EXPECT_EQ(tree->pool().current_bytes(), pristine_bytes);
    EXPECT_EQ(reuser.TakeTree(), nullptr);  // run built nothing
  }
}

TEST(PipelineTest, SharedTreeRunMatchesUnderParallelTraversal) {
  Table t = MakeTable(2500, 37);
  GordianOptions serial;
  serial.traversal_threads = -1;
  KeyDiscoveryResult baseline = FindKeys(t, serial);

  ProfileSession builder(serial);
  KeyDiscoveryResult first;
  ASSERT_TRUE(builder.Run(t, &first).ok());
  std::unique_ptr<PrefixTree> tree = builder.TakeTree();
  ASSERT_NE(tree, nullptr);

  GordianOptions par;
  par.traversal_threads = 8;
  ProfileSession reuser(par);
  reuser.set_shared_tree(tree.get());
  KeyDiscoveryResult reused;
  ASSERT_TRUE(reuser.Run(t, &reused).ok());
  ExpectSameReport(t, baseline, reused);
}

TEST(PipelineTest, SampledRunMatchesFindKeys) {
  Table t = MakeTable(4000, 41);
  GordianOptions opt;
  opt.traversal_threads = -1;
  opt.sample_rows = 500;
  opt.sample_seed = 7;
  KeyDiscoveryResult baseline = FindKeys(t, opt);
  ASSERT_TRUE(baseline.sampled);

  ProfileSession session(opt);
  KeyDiscoveryResult piped;
  ASSERT_TRUE(session.Run(t, &piped).ok());
  ExpectSameReport(t, baseline, piped);
}

TEST(PipelineTest, NullExclusionRunMatchesFindKeys) {
  // A nullable column forces EncodeStage down the null-projection path
  // (nested session over the projected table).
  TableBuilder b(Schema(std::vector<std::string>{"maybe", "id", "mod"}));
  for (int64_t i = 0; i < 400; ++i) {
    b.AddRow({i % 11 == 0 ? Value::Null() : Value(i % 30), Value(i),
              Value(i % 17)});
  }
  Table t = b.Build();

  GordianOptions opt;
  opt.traversal_threads = -1;
  opt.null_semantics = GordianOptions::NullSemantics::kExcludeNullableColumns;
  KeyDiscoveryResult baseline = FindKeys(t, opt);

  ProfileSession session(opt);
  KeyDiscoveryResult piped;
  ASSERT_TRUE(session.Run(t, &piped).ok());
  ExpectSameReport(t, baseline, piped);
}

TEST(PipelineTest, DuplicateEntitiesConcludeAfterTreeBuild) {
  // Two columns of cardinality 2 over 200 rows guarantee duplicate
  // entities: the run must conclude with no_keys after tree build, leaving
  // no traversal metrics behind.
  SyntheticSpec spec = UniformSpec(2, 200, 2, 0.0, 53);
  spec.ensure_unique_rows = false;
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());

  ProfileSession session(GordianOptions{});
  KeyDiscoveryResult r;
  ASSERT_TRUE(session.Run(t, &r).ok());
  EXPECT_TRUE(r.no_keys);
  EXPECT_TRUE(r.keys.empty());
  for (const StageMetric& m : session.stage_metrics()) {
    EXPECT_NE(m.name, std::string("traverse"));
  }
}

TEST(PipelineTest, PreCancelledRunFinishesIncomplete) {
  Table t = MakeTable(1000, 59);
  std::atomic<bool> cancel{true};
  GordianOptions opt;
  opt.cancel_flag = &cancel;
  ProfileSession session(opt);
  KeyDiscoveryResult r;
  ASSERT_TRUE(session.Run(t, &r).ok());
  EXPECT_TRUE(r.incomplete);
  EXPECT_EQ(r.incomplete_reason, AbortReason::kCancelled);
  EXPECT_TRUE(r.keys.empty());
}

TEST(PipelineTest, StageMetricsCoverExecutedStages) {
  Table t = MakeTable(2000, 61);
  GordianOptions opt;
  opt.traversal_threads = -1;
  ProfileSession session(opt);
  KeyDiscoveryResult r;
  ASSERT_TRUE(session.Run(t, &r).ok());

  const std::vector<StageMetric>& metrics = session.stage_metrics();
  ASSERT_EQ(metrics.size(), 5u);
  const char* expected[] = {"encode", "tree_build", "traverse", "convert",
                            "validate"};
  for (size_t i = 0; i < metrics.size(); ++i) {
    EXPECT_EQ(metrics[i].name, expected[i]);
    EXPECT_GE(metrics[i].seconds, 0.0);
  }
  // Tree build's bytes reflect the pool; traversal's the run's peak.
  EXPECT_GT(metrics[1].bytes, 0);
  EXPECT_GT(metrics[2].bytes, 0);
}

TEST(PipelineTest, SessionIsReusableAcrossTables) {
  Table a = MakeTable(1500, 67);
  Table b = MakeTable(1500, 71);
  GordianOptions opt;
  opt.traversal_threads = -1;
  ProfileSession session(opt);

  KeyDiscoveryResult ra, rb, ra2;
  ASSERT_TRUE(session.Run(a, &ra).ok());
  ASSERT_TRUE(session.Run(b, &rb).ok());
  ASSERT_TRUE(session.Run(a, &ra2).ok());
  ExpectSameReport(a, ra, ra2);
  ExpectSameReport(a, FindKeys(a, opt), ra);
  ExpectSameReport(b, FindKeys(b, opt), rb);
}

TEST(PipelineTest, ResolveTraversalThreadsHonorsExplicitSetting) {
  GordianOptions opt;
  opt.traversal_threads = 4;
  EXPECT_EQ(ResolveTraversalThreads(opt), 4);
  opt.traversal_threads = -1;
  EXPECT_EQ(ResolveTraversalThreads(opt), 0);
}

}  // namespace
}  // namespace gordian
