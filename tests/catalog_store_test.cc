// Tests for the crash-safe per-shard catalog store: property/fuzz
// round-trips, corruption quarantine (one torn shard must not take out the
// other 15), a FaultFs-driven crash-recovery matrix over every injection
// point of the durable-save sequence, the flock writer lease, read-only
// sharing across store instances, and the ProfilingService wiring
// (background flusher, persistence across a service restart, and the
// warm-flush-writes-zero-bytes guarantee asserted via ServiceMetrics).

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "datagen/synthetic.h"
#include "service/catalog_store.h"
#include "common/fault_fs.h"
#include "service/key_catalog.h"
#include "service/metrics.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"

namespace gordian {
namespace {

namespace stdfs = std::filesystem;

// A fresh, empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gordian_store_" + name;
  std::error_code ec;
  stdfs::remove_all(dir, ec);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Fingerprint routed to `shard`, salted so entries within a shard differ.
uint64_t FingerprintInShard(int shard, uint64_t salt) {
  return (static_cast<uint64_t>(shard) << 60) |
         (salt & ((uint64_t{1} << 60) - 1));
}

constexpr int kColumns = 8;

// A small complete discovery result with structure the loader validates
// (canonical attribute sets below kColumns, strengths, flags).
KeyDiscoveryResult MakeResult(Random* rng) {
  KeyDiscoveryResult r;
  r.sampled = rng->Bernoulli(0.3);
  r.stats.rows_processed = 100 + static_cast<int64_t>(rng->Uniform(1000));
  r.stats.num_attributes = kColumns;
  int num_keys = 1 + static_cast<int>(rng->Uniform(3));
  for (int k = 0; k < num_keys; ++k) {
    DiscoveredKey key;
    key.attrs.Set(static_cast<int>(rng->Uniform(kColumns)));
    key.attrs.Set(static_cast<int>(rng->Uniform(kColumns)));
    key.estimated_strength = 0.5 + 0.5 * rng->NextDouble();
    key.exact_strength = rng->Bernoulli(0.5) ? 1.0 : -1.0;
    r.keys.push_back(key);
  }
  AttributeSet nk;
  nk.Set(static_cast<int>(rng->Uniform(kColumns)));
  r.non_keys.push_back(nk);
  return r;
}

void PutRandomEntry(KeyCatalog* catalog, int shard, uint64_t salt,
                    const std::string& name, Random* rng) {
  ASSERT_TRUE(catalog->Put(FingerprintInShard(shard, salt), name, kColumns,
                           MakeResult(rng)));
}

void ExpectEntriesEqual(const CatalogEntry& a, const CatalogEntry& b) {
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.table_name, b.table_name);
  EXPECT_EQ(a.num_columns, b.num_columns);
  EXPECT_EQ(a.result.no_keys, b.result.no_keys);
  EXPECT_EQ(a.result.sampled, b.result.sampled);
  EXPECT_EQ(a.result.stats.rows_processed, b.result.stats.rows_processed);
  EXPECT_EQ(a.result.KeySets(), b.result.KeySets());
  EXPECT_EQ(a.result.non_keys, b.result.non_keys);
  ASSERT_EQ(a.result.keys.size(), b.result.keys.size());
  for (size_t i = 0; i < a.result.keys.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.result.keys[i].estimated_strength,
                     b.result.keys[i].estimated_strength);
    EXPECT_DOUBLE_EQ(a.result.keys[i].exact_strength,
                     b.result.keys[i].exact_strength);
  }
}

void ExpectCatalogsEqual(const KeyCatalog& a, const KeyCatalog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (uint64_t fp : a.Fingerprints()) {
    CatalogEntry ea, eb;
    ASSERT_TRUE(a.Lookup(fp, &ea));
    ASSERT_TRUE(b.Lookup(fp, &eb)) << "missing fingerprint " << fp;
    ExpectEntriesEqual(ea, eb);
  }
}

// ------------------------------------------------------------- round trip

TEST(CatalogStore, RandomCatalogsRoundTripPerShard) {
  Random rng(4711);
  for (int trial = 0; trial < 8; ++trial) {
    std::string dir = FreshDir("roundtrip");
    KeyCatalog original;
    int entries = static_cast<int>(rng.Uniform(40));
    for (int e = 0; e < entries; ++e) {
      PutRandomEntry(&original, static_cast<int>(rng.Uniform(16)),
                     rng.Next(), "t" + std::to_string(e), &rng);
    }
    {
      CatalogStore writer(dir, &original);
      ASSERT_TRUE(writer.Open().ok());
      FlushStats stats;
      ASSERT_TRUE(writer.Flush(&stats).ok());
      EXPECT_GT(stats.bytes_written, 0);
      EXPECT_EQ(stats.shards_flushed + stats.shards_skipped,
                KeyCatalog::kNumShards);
    }
    KeyCatalog reloaded;
    CatalogStore reader(dir, &reloaded);
    RecoveryReport report;
    ASSERT_TRUE(reader.Open(&report).ok()) << "trial " << trial;
    EXPECT_EQ(report.shards_quarantined, 0);
    EXPECT_EQ(report.entries_loaded, original.size());
    ExpectCatalogsEqual(original, reloaded);
  }
}

TEST(CatalogStore, WarmFlushWritesZeroBytes) {
  std::string dir = FreshDir("warm");
  Random rng(99);
  KeyCatalog catalog;
  for (int s = 0; s < 16; ++s) PutRandomEntry(&catalog, s, s, "t", &rng);

  ServiceMetrics metrics;
  CatalogStore::Options options;
  options.metrics = &metrics;
  CatalogStore store(dir, &catalog, options);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Flush().ok());

  // Nothing changed: the dirty bits skip all 16 shards and not one byte —
  // shard, manifest, or otherwise — goes to disk.
  ServiceMetrics::Snapshot before = metrics.Read();
  FlushStats stats;
  ASSERT_TRUE(store.Flush(&stats).ok());
  ServiceMetrics::Snapshot after = metrics.Read();
  EXPECT_EQ(stats.shards_flushed, 0);
  EXPECT_EQ(stats.shards_skipped, KeyCatalog::kNumShards);
  EXPECT_EQ(stats.bytes_written, 0);
  EXPECT_EQ(after.catalog_flush_bytes, before.catalog_flush_bytes);
  EXPECT_EQ(after.dirty_shard_skips - before.dirty_shard_skips,
            KeyCatalog::kNumShards);
  EXPECT_EQ(after.catalog_flushes - before.catalog_flushes, 1);
  EXPECT_EQ(store.epoch(), 1u);  // warm flush did not bump the manifest
}

TEST(CatalogStore, DirtyBitRewritesOnlyChangedShards) {
  std::string dir = FreshDir("dirty");
  Random rng(7);
  KeyCatalog catalog;
  for (int s = 0; s < 16; ++s) PutRandomEntry(&catalog, s, s, "t", &rng);
  CatalogStore store(dir, &catalog);
  ASSERT_TRUE(store.Open().ok());
  ASSERT_TRUE(store.Flush().ok());

  PutRandomEntry(&catalog, 3, 1001, "newer", &rng);
  ASSERT_TRUE(catalog.Erase(FingerprintInShard(9, 9)));
  FlushStats stats;
  ASSERT_TRUE(store.Flush(&stats).ok());
  EXPECT_EQ(stats.shards_flushed, 2);  // shards 3 and 9 only
  EXPECT_EQ(stats.shards_skipped, 14);
  EXPECT_EQ(store.epoch(), 2u);
}

// ------------------------------------------------- corruption quarantine

TEST(CatalogStore, CorruptShardIsQuarantinedAloneFuzz) {
  Random rng(20260807);
  for (int trial = 0; trial < 25; ++trial) {
    std::string dir = FreshDir("quarantine");
    KeyCatalog original;
    for (int s = 0; s < 16; ++s) {
      int per_shard = 1 + static_cast<int>(rng.Uniform(3));
      for (int e = 0; e < per_shard; ++e) {
        PutRandomEntry(&original, s, rng.Next(), "q" + std::to_string(e),
                       &rng);
      }
    }
    std::string victim_path;
    int victim = static_cast<int>(rng.Uniform(16));
    {
      CatalogStore writer(dir, &original);
      ASSERT_TRUE(writer.Open().ok());
      ASSERT_TRUE(writer.Flush().ok());
      victim_path = writer.ShardPath(victim);
    }

    // Corrupt exactly one shard file: random truncation or random bit flips.
    std::string bytes = ReadFileBytes(victim_path);
    ASSERT_FALSE(bytes.empty());
    if (rng.Bernoulli(0.5)) {
      bytes.resize(rng.Uniform(bytes.size()));
    } else {
      int flips = 1 + static_cast<int>(rng.Uniform(4));
      for (int f = 0; f < flips; ++f) {
        size_t pos = rng.Uniform(bytes.size());
        bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << rng.Uniform(8)));
      }
    }
    WriteFileBytes(victim_path, bytes);

    KeyCatalog reloaded;
    CatalogStore reader(dir, &reloaded);
    RecoveryReport report;
    Status s = reader.Open(&report);
    ASSERT_TRUE(s.IsPartial()) << "trial " << trial << ": " << s.ToString();
    ASSERT_EQ(report.quarantined_shards, std::vector<int>{victim});
    EXPECT_EQ(report.shards_loaded, 15);
    // The corrupt file moved aside; its 15 neighbours loaded intact.
    EXPECT_FALSE(stdfs::exists(victim_path));
    EXPECT_TRUE(stdfs::exists(victim_path + ".quarantined"));
    for (int s2 = 0; s2 < 16; ++s2) {
      std::vector<CatalogEntry> want = original.ShardSnapshot(s2);
      std::vector<CatalogEntry> got = reloaded.ShardSnapshot(s2);
      if (s2 == victim) {
        EXPECT_TRUE(got.empty());
        continue;
      }
      ASSERT_EQ(got.size(), want.size()) << "shard " << s2;
      for (size_t i = 0; i < got.size(); ++i) {
        ExpectEntriesEqual(want[i], got[i]);
      }
    }
  }
}

// --------------------------------------------------- crash-recovery matrix

struct CrashCase {
  const char* label;
  FaultSpec fault;
};

// Shard contents keyed by fingerprint -> table name; enough to tell the
// old snapshot from the new one (names differ) while staying cheap.
using ShardImage = std::map<uint64_t, std::string>;

ShardImage ImageOf(const KeyCatalog& catalog, int shard) {
  ShardImage image;
  for (const CatalogEntry& e : catalog.ShardSnapshot(shard)) {
    image[e.fingerprint] = e.table_name;
  }
  return image;
}

TEST(CatalogStore, CrashRecoveryMatrixYieldsOldOrNewPerShard) {
  const CrashCase kCases[] = {
      {"shard temp write fails outright",
       {FsOp::kWriteFile, "shard-", 0, -1, "injected fault", true}},
      {"shard temp write torn after 20 bytes",
       {FsOp::kWriteFile, "shard-", 1, 20, "injected torn write", true}},
      {"shard temp write hits ENOSPC mid-file",
       {FsOp::kWriteFile, "shard-", 2, 100,
        "injected ENOSPC: no space left on device", true}},
      {"shard fsync fails",
       {FsOp::kSyncFile, "shard-", 1, -1, "injected fault", true}},
      {"shard rename fails",
       {FsOp::kRename, "shard-", 1, -1, "injected fault", true}},
      {"manifest temp write fails",
       {FsOp::kWriteFile, "MANIFEST", 0, -1, "injected fault", true}},
      {"manifest temp write torn",
       {FsOp::kWriteFile, "MANIFEST", 0, 10, "injected torn write", true}},
      {"manifest fsync fails",
       {FsOp::kSyncFile, "MANIFEST", 0, -1, "injected fault", true}},
      {"manifest rename fails",
       {FsOp::kRename, "MANIFEST", 0, -1, "injected fault", true}},
      {"directory fsync fails",
       {FsOp::kSyncDir, "", 0, -1, "injected fault", true}},
  };

  Random rng(31337);
  for (const CrashCase& c : kCases) {
    SCOPED_TRACE(c.label);
    std::string dir = FreshDir("crash");

    // State A: entries in several shards, flushed clean.
    KeyCatalog catalog;
    for (int s = 0; s < 8; ++s) {
      PutRandomEntry(&catalog, s, 10 + s, "old", &rng);
      PutRandomEntry(&catalog, s, 200 + s, "old", &rng);
    }
    FaultInjectionFs ffs(DefaultFileSystem());
    CatalogStore::Options options;
    options.fs = &ffs;
    std::array<ShardImage, 16> old_image, new_image;
    {
      CatalogStore store(dir, &catalog, options);
      ASSERT_TRUE(store.Open().ok());
      ASSERT_TRUE(store.Flush().ok());
      for (int s = 0; s < 16; ++s) old_image[s] = ImageOf(catalog, s);

      // State B: touch five shards (update, add, erase) and one new shard.
      for (int s = 2; s < 6; ++s) {
        PutRandomEntry(&catalog, s, 10 + s, "new", &rng);   // update
        PutRandomEntry(&catalog, s, 3000 + s, "new", &rng); // add
      }
      ASSERT_TRUE(catalog.Erase(FingerprintInShard(7, 207)));
      PutRandomEntry(&catalog, 12, 999, "new", &rng);  // fresh shard
      for (int s = 0; s < 16; ++s) new_image[s] = ImageOf(catalog, s);

      ffs.Arm(c.fault);
      Status flush = store.Flush();
      ASSERT_FALSE(flush.ok());
      ASSERT_TRUE(ffs.fired()) << "fault never matched: " << flush.ToString();
      // The store is abandoned here, mid-save, exactly as a crash would
      // leave it (the halted fs blocked everything after the fault point).
    }

    // Reboot: recover the directory with a healthy file system.
    KeyCatalog recovered;
    CatalogStore reopened(dir, &recovered);
    RecoveryReport report;
    Status open = reopened.Open(&report);
    // Write-to-temp + atomic rename must never leave a corrupt *final*
    // file, whatever step died — so recovery is clean, never partial.
    ASSERT_TRUE(open.ok()) << open.ToString();
    EXPECT_EQ(report.shards_quarantined, 0);

    for (int s = 0; s < 16; ++s) {
      ShardImage got = ImageOf(recovered, s);
      EXPECT_TRUE(got == old_image[s] || got == new_image[s])
          << "shard " << s << " recovered to a mixed/unknown snapshot";
    }
  }
}

TEST(CatalogStore, InterruptedFlushRetriesToCompletion) {
  std::string dir = FreshDir("retry");
  Random rng(55);
  KeyCatalog catalog;
  for (int s = 0; s < 6; ++s) PutRandomEntry(&catalog, s, s, "v1", &rng);

  FaultInjectionFs ffs(DefaultFileSystem());
  CatalogStore::Options options;
  options.fs = &ffs;
  CatalogStore store(dir, &catalog, options);
  ASSERT_TRUE(store.Open().ok());

  // First flush dies on the third shard file; the same store retries after
  // the "transient" fault clears and must complete the snapshot.
  ffs.Arm({FsOp::kWriteFile, "shard-", 2, -1, "injected fault", true});
  ASSERT_FALSE(store.Flush().ok());
  ffs.Reset();
  ASSERT_TRUE(store.Flush().ok());

  KeyCatalog reloaded;
  CatalogStore::Options reader_options;
  reader_options.mode = CatalogStore::Mode::kReadOnly;  // writer holds the lease
  CatalogStore reader(dir, &reloaded, reader_options);
  ASSERT_TRUE(reader.Open().ok());
  ExpectCatalogsEqual(catalog, reloaded);
}

// ------------------------------------------------------- lease + sharing

TEST(CatalogStore, SecondWriterFailsFastWithClearStatus) {
  std::string dir = FreshDir("lease");
  KeyCatalog c1, c2;
  CatalogStore writer1(dir, &c1);
  ASSERT_TRUE(writer1.Open().ok());

  CatalogStore writer2(dir, &c2);
  Status s = writer2.Open();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_NE(s.ToString().find("writer lease"), std::string::npos)
      << s.ToString();
}

TEST(CatalogStore, LeaseIsReleasedOnDestruction) {
  std::string dir = FreshDir("lease2");
  KeyCatalog c1, c2;
  {
    CatalogStore writer1(dir, &c1);
    ASSERT_TRUE(writer1.Open().ok());
  }
  CatalogStore writer2(dir, &c2);
  EXPECT_TRUE(writer2.Open().ok());
}

TEST(CatalogStore, ReaderObservesWriterFlushes) {
  std::string dir = FreshDir("share");
  Random rng(81);
  KeyCatalog writer_catalog;
  CatalogStore writer(dir, &writer_catalog);
  ASSERT_TRUE(writer.Open().ok());
  PutRandomEntry(&writer_catalog, 4, 1, "first", &rng);
  ASSERT_TRUE(writer.Flush().ok());

  // A reader over the same directory, no lease, sees the flushed entry.
  KeyCatalog reader_catalog;
  CatalogStore::Options read_options;
  read_options.mode = CatalogStore::Mode::kReadOnly;
  CatalogStore reader(dir, &reader_catalog, read_options);
  ASSERT_TRUE(reader.Open().ok());
  EXPECT_TRUE(reader_catalog.Contains(FingerprintInShard(4, 1)));
  EXPECT_EQ(reader_catalog.size(), 1);

  // Unflushed writer state is invisible; after the flush, Refresh sees it.
  PutRandomEntry(&writer_catalog, 9, 2, "second", &rng);
  ASSERT_TRUE(reader.Refresh().ok());
  EXPECT_FALSE(reader_catalog.Contains(FingerprintInShard(9, 2)));
  ASSERT_TRUE(writer.Flush().ok());
  ASSERT_TRUE(reader.Refresh().ok());
  EXPECT_TRUE(reader_catalog.Contains(FingerprintInShard(9, 2)));
  EXPECT_EQ(reader.epoch(), writer.epoch());

  // Readers cannot write, and they hold no lease that would block one.
  EXPECT_EQ(reader.Flush().code(), Status::Code::kUnsupported);
}

// ------------------------------------------------------- service wiring

Table MakeTable(int64_t rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(5, rows, 24, 0.5, seed);
  spec.columns[0].cardinality = 128;
  spec.columns[2].cardinality = 32;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

TEST(ProfilingServicePersistence, CatalogSurvivesServiceRestart) {
  std::string dir = FreshDir("service");
  std::vector<Table> tables;
  for (uint64_t i = 0; i < 3; ++i) tables.push_back(MakeTable(200, 40 + i));

  {
    ServiceOptions options;
    options.num_threads = 2;
    options.catalog_dir = dir;
    options.flush_every_puts = 1;  // background flusher after every put
    ProfilingService service(options);
    ASSERT_TRUE(service.persistence_status().ok())
        << service.persistence_status().ToString();
    std::vector<JobId> ids;
    for (size_t i = 0; i < tables.size(); ++i) {
      ids.push_back(service.SubmitTable("t" + std::to_string(i), &tables[i]));
    }
    for (JobId id : ids) {
      ProfileOutcome out = service.Wait(id);
      EXPECT_FALSE(out.cache_hit);
      EXPECT_FALSE(out.result.incomplete);
    }
    // Destructor: final flush + lease release.
  }

  ServiceOptions options;
  options.num_threads = 2;
  options.catalog_dir = dir;
  ProfilingService service(options);
  ASSERT_TRUE(service.persistence_status().ok());
  EXPECT_EQ(service.catalog().size(), static_cast<int64_t>(tables.size()));

  // Every table is served straight from the recovered catalog.
  for (size_t i = 0; i < tables.size(); ++i) {
    ProfileOutcome out =
        service.Wait(service.SubmitTable("again", &tables[i]));
    EXPECT_TRUE(out.cache_hit) << "table " << i;
  }
  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.cache_hits, static_cast<int64_t>(tables.size()));
  EXPECT_GT(m.shards_recovered, 0);

  // With nothing new, a flush is pure dirty-bit skips: zero bytes.
  ASSERT_TRUE(service.FlushCatalog().ok());
  ServiceMetrics::Snapshot before = service.Metrics();
  ASSERT_TRUE(service.FlushCatalog().ok());
  ServiceMetrics::Snapshot after = service.Metrics();
  EXPECT_EQ(after.catalog_flush_bytes, before.catalog_flush_bytes);
  EXPECT_EQ(after.dirty_shard_skips - before.dirty_shard_skips,
            KeyCatalog::kNumShards);
}

TEST(ProfilingServicePersistence, SecondServiceOnSameDirDegradesGracefully) {
  std::string dir = FreshDir("service_lease");
  ServiceOptions options;
  options.num_threads = 1;
  options.catalog_dir = dir;
  ProfilingService first(options);
  ASSERT_TRUE(first.persistence_status().ok());

  // The second service cannot take the lease: it still profiles fine, but
  // reports why durability is off and has no store.
  ProfilingService second(options);
  Status s = second.persistence_status();
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("writer lease"), std::string::npos);
  EXPECT_EQ(second.catalog_store(), nullptr);

  Table t = MakeTable(150, 5);
  ProfileOutcome out = second.Wait(second.SubmitTable("t", &t));
  EXPECT_FALSE(out.result.incomplete);
}

TEST(ProfilingServicePersistence, QuarantinedShardSurfacesAsPartial) {
  std::string dir = FreshDir("service_partial");
  Random rng(12);
  {
    KeyCatalog catalog;
    for (int s = 0; s < 16; ++s) PutRandomEntry(&catalog, s, s, "t", &rng);
    CatalogStore store(dir, &catalog);
    ASSERT_TRUE(store.Open().ok());
    ASSERT_TRUE(store.Flush().ok());
  }
  // Tear one shard's file.
  std::string victim = dir + "/shard-05.grdc";
  WriteFileBytes(victim, ReadFileBytes(victim).substr(0, 9));

  ServiceOptions options;
  options.num_threads = 1;
  options.catalog_dir = dir;
  ProfilingService service(options);
  Status s = service.persistence_status();
  EXPECT_TRUE(s.IsPartial()) << s.ToString();
  EXPECT_EQ(service.recovery_report().quarantined_shards,
            std::vector<int>{5});
  EXPECT_EQ(service.catalog().size(), 15);
  EXPECT_NE(service.catalog_store(), nullptr);  // still durable going forward
  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.shards_quarantined, 1);
  EXPECT_EQ(m.shards_recovered, 15);
}

}  // namespace
}  // namespace gordian
