// Cross-validation on realistic (dataset-generator) tables, where the full
// exhaustive oracle is unaffordable: GORDIAN's keys of arity <= k must
// coincide with the arity-limited brute force's minimal keys. (A key of
// size <= k is globally minimal iff it is minimal among keys of size <= k,
// since all its proper subsets are smaller.)

#include <gtest/gtest.h>

#include <algorithm>

#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/baseball_like.h"
#include "datagen/opic_like.h"
#include "datagen/tpch_lite.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

void CrossValidate(const Table& t, int max_arity, const std::string& label) {
  KeyDiscoveryResult g = FindKeys(t);
  BruteForceOptions o;
  o.max_arity = max_arity;
  BruteForceResult bf = BruteForceFindKeys(t, o);
  ASSERT_FALSE(bf.truncated) << label;
  ASSERT_EQ(g.no_keys, bf.no_keys) << label;
  if (g.no_keys) return;

  std::vector<AttributeSet> gordian_small;
  for (const DiscoveredKey& k : g.keys) {
    if (k.attrs.Count() <= max_arity) gordian_small.push_back(k.attrs);
  }
  EXPECT_EQ(Sorted(gordian_small), Sorted(bf.keys)) << label;
}

TEST(CrossValidation, TpchTablesUpToArityThree) {
  for (auto& nt : GenerateTpchLite(0.003, 601)) {
    if (nt.table.num_rows() > 20000) continue;  // keep the oracle affordable
    CrossValidate(nt.table, 3, nt.name);
  }
}

TEST(CrossValidation, BaseballTablesUpToArityThree) {
  for (auto& nt : GenerateBaseballLike(0.05, 602)) {
    if (nt.table.num_rows() > 20000) continue;
    // Wide stat tables have huge arity-3 candidate spaces; cap to the
    // narrow ones for the exact sweep.
    if (nt.table.num_columns() > 10) continue;
    CrossValidate(nt.table, 3, nt.name);
  }
}

TEST(CrossValidation, BaseballWideTablesUpToArityTwo) {
  for (auto& nt : GenerateBaseballLike(0.05, 603)) {
    if (nt.table.num_columns() <= 10 || nt.table.num_rows() > 10000) continue;
    CrossValidate(nt.table, 2, nt.name);
  }
}

TEST(CrossValidation, OpicTablesUpToArityTwo) {
  for (int attrs : {12, 24, 40}) {
    Table t = GenerateOpicLike(3000, attrs, 604 + attrs);
    CrossValidate(t, 2, "opic" + std::to_string(attrs));
  }
}

TEST(CrossValidation, FactTableUpToArityTwo) {
  Table t = GenerateTpchFact(8000, 605);
  CrossValidate(t, 2, "fact");
}

}  // namespace
}  // namespace gordian
