// Specification tests for the segment processing order (the paper's
// Figure 9): with pruning disabled, NonKeyFinder must examine, for a single
// slice over attributes X, Y, Z, the segments in the order
//   XYZ, XY, XZ, X, YZ, Y, Z
// — each level's attribute is projected out only after everything beneath
// it was explored, which is exactly what makes the covered-first pruning
// opportunities of Section 3.4 possible.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/non_key_finder.h"
#include "core/prefix_tree.h"
#include "table/table.h"

namespace gordian {
namespace {

class RecordingObserver : public TraversalObserver {
 public:
  void OnSegment(const AttributeSet& segment) override {
    segments.push_back(segment);
  }
  void OnNonKey(const AttributeSet& nk) override { non_keys.push_back(nk); }
  void OnMerge(int level) override { merges.push_back(level); }
  void OnPrune(const char* kind, int level) override {
    prunes.emplace_back(kind, level);
  }

  std::vector<AttributeSet> segments;
  std::vector<AttributeSet> non_keys;
  std::vector<int> merges;
  std::vector<std::pair<std::string, int>> prunes;
};

RecordingObserver RunWithObserver(const Table& t, const GordianOptions& o) {
  RecordingObserver obs;
  std::vector<int> order(t.num_columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  PrefixTree tree = PrefixTree::Build(t, order, o.tree_build);
  GordianStats stats;
  NonKeySet set(&stats);
  NonKeyFinder finder(tree, o, &set, &stats, &obs);
  EXPECT_TRUE(finder.Run());
  return obs;
}

// A dense 3-attribute table (several values everywhere, duplicates in every
// projection) so that no structural pruning can hide segments even when
// enabled.
Table DenseThreeAttrTable() {
  TableBuilder b(Schema(std::vector<std::string>{"X", "Y", "Z"}));
  for (int x = 0; x < 3; ++x) {
    for (int y = 0; y < 3; ++y) {
      for (int z = 0; z < 3; ++z) {
        b.AddRow({Value(int64_t{x}), Value(int64_t{y}), Value(int64_t{z})});
      }
    }
  }
  return b.Build();
}

TEST(TraversalOrder, Figure9SegmentOrderWithoutPruning) {
  GordianOptions o;
  o.singleton_pruning = false;
  o.futility_pruning = false;
  o.single_entity_pruning = false;
  RecordingObserver obs = RunWithObserver(DenseThreeAttrTable(), o);

  // The distinct segments, in first-appearance order.
  std::vector<AttributeSet> first_seen;
  for (const AttributeSet& s : obs.segments) {
    bool seen = false;
    for (const AttributeSet& f : first_seen) {
      if (f == s) seen = true;
    }
    if (!seen) first_seen.push_back(s);
  }
  const std::vector<AttributeSet> expected = {
      AttributeSet{0, 1, 2},  // XYZ
      AttributeSet{0, 1},     // XY
      AttributeSet{0, 2},     // XZ
      AttributeSet{0},        // X
      AttributeSet{1, 2},     // YZ
      AttributeSet{1},        // Y
      AttributeSet{2},        // Z
      AttributeSet{},         // the final projection onto no attributes
  };
  EXPECT_EQ(first_seen, expected);
}

TEST(TraversalOrder, EverySegmentIsVisitedWithoutPruning) {
  GordianOptions o;
  o.singleton_pruning = false;
  o.futility_pruning = false;
  o.single_entity_pruning = false;
  RecordingObserver obs = RunWithObserver(DenseThreeAttrTable(), o);
  // All 7 non-empty subsets of 3 attributes appear (2^3 - 1), plus the
  // empty set is never a segment... it is: projecting the last attribute of
  // the top merge chain reaches {} as the final "segment" check at the
  // deepest merged leaf. Assert the seven non-empty ones.
  for (uint64_t mask = 1; mask < 8; ++mask) {
    AttributeSet s;
    for (int i = 0; i < 3; ++i) {
      if (mask & (1u << i)) s.Set(i);
    }
    bool seen = false;
    for (const AttributeSet& seg : obs.segments) {
      if (seg == s) seen = true;
    }
    EXPECT_TRUE(seen) << s.ToString();
  }
}

TEST(TraversalOrder, DuplicatesInEveryProjectionYieldNonKeyEvents) {
  GordianOptions o;
  RecordingObserver obs = RunWithObserver(DenseThreeAttrTable(), o);
  // In the dense table, XY (and everything below) has duplicates, so
  // non-key events must fire; the maximal one {X,Y} or {X,Z}... all 2-sets
  // are non-keys, and even XYZ... XYZ is unique (27 distinct rows). The
  // first reported non-key is XY.
  ASSERT_FALSE(obs.non_keys.empty());
  EXPECT_EQ(obs.non_keys.front(), (AttributeSet{0, 1}));
}

TEST(TraversalOrder, MergeEventsAreBottomUpPerSlice) {
  GordianOptions o;
  o.singleton_pruning = false;
  o.futility_pruning = false;
  o.single_entity_pruning = false;
  RecordingObserver obs = RunWithObserver(DenseThreeAttrTable(), o);
  // First merge happens at the deepest non-leaf level (projecting Z from
  // the first X,Y slice). The top-level merge (projecting X) happens
  // exactly once, near the end — only the merges *inside* the resulting
  // tree follow it.
  ASSERT_FALSE(obs.merges.empty());
  EXPECT_EQ(obs.merges.front(), 1);
  int top_level = 0;
  size_t top_pos = 0;
  for (size_t i = 0; i < obs.merges.size(); ++i) {
    if (obs.merges[i] == 0) {
      ++top_level;
      top_pos = i;
    }
  }
  EXPECT_EQ(top_level, 1);
  for (size_t i = top_pos + 1; i < obs.merges.size(); ++i) {
    EXPECT_GT(obs.merges[i], 0);
  }
}

TEST(TraversalOrder, PruningEventsCarryTheirKind) {
  // Correlated-ish data with shared subtrees triggers singleton pruning.
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  for (int i = 0; i < 40; ++i) {
    b.AddRow({Value(int64_t{i % 2}), Value(int64_t{i % 4}),
              Value(int64_t{i})});
  }
  RecordingObserver obs = RunWithObserver(b.Build(), GordianOptions{});
  bool saw_known_kind = false;
  for (const auto& [kind, level] : obs.prunes) {
    EXPECT_TRUE(kind == "singleton" || kind == "singleton-merge" ||
                kind == "single-entity" || kind == "futility")
        << kind;
    EXPECT_GE(level, 0);
    EXPECT_LT(level, 3);
    saw_known_kind = true;
  }
  EXPECT_TRUE(saw_known_kind);
}

TEST(TraversalOrder, ObserverDoesNotChangeResults) {
  Table t = DenseThreeAttrTable();
  GordianOptions o;
  RecordingObserver obs;
  std::vector<int> order = {0, 1, 2};
  PrefixTree tree1 = PrefixTree::Build(t, order, o.tree_build);
  GordianStats s1;
  NonKeySet set1(&s1);
  NonKeyFinder f1(tree1, o, &set1, &s1, &obs);
  EXPECT_TRUE(f1.Run());

  PrefixTree tree2 = PrefixTree::Build(t, order, o.tree_build);
  GordianStats s2;
  NonKeySet set2(&s2);
  NonKeyFinder f2(tree2, o, &set2, &s2, nullptr);
  EXPECT_TRUE(f2.Run());

  EXPECT_EQ(set1.non_keys(), set2.non_keys());
}

}  // namespace
}  // namespace gordian
