// Randomized plan-equivalence fuzzing for the mini query engine: arbitrary
// queries (equality conjunctions, ranges, projections) against arbitrary
// index sets must produce identical results through every plan.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "datagen/tpch_lite.h"
#include "engine/executor.h"
#include "engine/index.h"
#include "engine/row_store.h"

namespace gordian {
namespace {

struct FuzzCase {
  int64_t rows;
  uint64_t seed;
  int queries;
};

class EngineFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(EngineFuzz, AllPlansAgreeWithScans) {
  const FuzzCase& c = GetParam();
  Table t = GenerateTpchFact(c.rows, c.seed);
  RowStore store(t);
  Random rng(c.seed ^ 0xfeed);

  // A varied set of indexes: singletons, pairs, and triples over random
  // columns (not necessarily keys — the executor must stay correct).
  std::vector<std::unique_ptr<CompositeIndex>> indexes;
  for (int arity = 1; arity <= 3; ++arity) {
    for (int i = 0; i < 2; ++i) {
      std::vector<int> cols;
      while (static_cast<int>(cols.size()) < arity) {
        int col = static_cast<int>(rng.Uniform(t.num_columns()));
        bool dup = false;
        for (int existing : cols) {
          if (existing == col) dup = true;
        }
        if (!dup) cols.push_back(col);
      }
      indexes.push_back(std::make_unique<CompositeIndex>(t, store, cols));
    }
  }
  Planner planner([&] {
    std::vector<std::unique_ptr<CompositeIndex>> copy;
    for (auto& idx : indexes) {
      copy.push_back(std::make_unique<CompositeIndex>(t, store,
                                                      idx->columns()));
    }
    return copy;
  }());

  for (int q = 0; q < c.queries; ++q) {
    Query query;
    query.label = "fuzz" + std::to_string(q);
    // 0-2 equality predicates from a sampled row (so they can match), or a
    // range on a random integer column.
    bool use_range = rng.Bernoulli(0.4);
    int64_t seed_row = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(t.num_rows())));
    if (use_range) {
      int col = static_cast<int>(rng.Uniform(t.num_columns()));
      const Value& v = t.value(seed_row, col);
      if (v.type() == ValueType::kInt64) {
        query.range.col = col;
        int64_t width = static_cast<int64_t>(rng.Uniform(1000));
        query.range.lo = v.int64() - width / 2;
        query.range.hi = query.range.lo + width;
      }
    } else {
      int preds = 1 + static_cast<int>(rng.Uniform(2));
      for (int p = 0; p < preds; ++p) {
        int col = static_cast<int>(rng.Uniform(t.num_columns()));
        bool dup = false;
        for (const EqPredicate& e : query.predicates) {
          if (e.col == col) dup = true;
        }
        if (!dup) query.predicates.push_back({col, t.code(seed_row, col)});
      }
    }
    int proj_cols = 1 + static_cast<int>(rng.Uniform(4));
    for (int p = 0; p < proj_cols; ++p) {
      query.projection.push_back(
          static_cast<int>(rng.Uniform(t.num_columns())));
    }

    QueryResult scan = ExecuteScan(t, store, query);
    // Planner's choice.
    PlanChoice plan = planner.Choose(t, query);
    EXPECT_EQ(Execute(t, store, plan, query), scan) << query.label;
    // Every index, even inapplicable ones (executor degrades to scan).
    for (const auto& idx : indexes) {
      EXPECT_EQ(ExecuteWithIndex(t, store, *idx, query), scan)
          << query.label << " via " << idx->Describe();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, EngineFuzz,
    ::testing::Values(FuzzCase{2000, 1, 25}, FuzzCase{2000, 2, 25},
                      FuzzCase{5000, 3, 15}, FuzzCase{500, 4, 40},
                      FuzzCase{500, 5, 40}),
    [](const auto& info) {
      return "r" + std::to_string(info.param.rows) + "_s" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace gordian
