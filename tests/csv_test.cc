// Unit tests for CSV reading/writing: quoting, type inference, error paths,
// and lossless round-trips.

#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace gordian {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "gordian_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream os(path);
    os << content;
  }
};

TEST_F(CsvTest, SplitBasic) {
  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvRecord("a,b,,d", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "", "d"}));
}

TEST_F(CsvTest, SplitQuotedWithEmbeddedDelimiterAndQuotes) {
  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvRecord("\"a,b\",\"he said \"\"hi\"\"\"", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "he said \"hi\""}));
}

TEST_F(CsvTest, SplitUnterminatedQuoteFails) {
  std::vector<std::string> fields;
  EXPECT_FALSE(SplitCsvRecord("\"oops", ',', &fields).ok());
}

TEST_F(CsvTest, ReadWithHeaderAndTypeInference) {
  std::string p = Path("infer.csv");
  WriteFile(p, "id,name,score\n1,alpha,1.5\n2,beta,\n3,07x,2\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.schema().name(0), "id");
  EXPECT_EQ(t.value(0, 0), Value(int64_t{1}));
  EXPECT_EQ(t.value(0, 2), Value(1.5));
  EXPECT_TRUE(t.value(1, 2).is_null());     // empty field
  EXPECT_EQ(t.value(2, 1), Value("07x"));   // non-numeric stays string
  EXPECT_EQ(t.value(2, 2), Value(int64_t{2}));
}

TEST_F(CsvTest, ReadWithoutHeaderNamesColumns) {
  std::string p = Path("nohdr.csv");
  WriteFile(p, "1,2\n3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().name(0), "c0");
  EXPECT_EQ(t.schema().name(1), "c1");
}

TEST_F(CsvTest, ReadWithoutInferenceKeepsStrings) {
  std::string p = Path("str.csv");
  WriteFile(p, "a\n1\n");
  CsvOptions opts;
  opts.infer_types = false;
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.value(0, 0), Value("1"));
}

TEST_F(CsvTest, ReadRejectsRaggedRows) {
  std::string p = Path("ragged.csv");
  WriteFile(p, "a,b\n1,2\n3\n");
  Table t;
  Status s = ReadCsv(p, CsvOptions{}, &t);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST_F(CsvTest, ReadMissingFileFails) {
  Table t;
  EXPECT_EQ(ReadCsv("/no/such/file.csv", CsvOptions{}, &t).code(),
            Status::Code::kIOError);
}

TEST_F(CsvTest, ReadEmptyFileFails) {
  std::string p = Path("empty.csv");
  WriteFile(p, "");
  Table t;
  EXPECT_FALSE(ReadCsv(p, CsvOptions{}, &t).ok());
}

TEST_F(CsvTest, ToleratesCrlfAndBlankLines) {
  std::string p = Path("crlf.csv");
  WriteFile(p, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.value(1, 1), Value(int64_t{4}));
}

TEST_F(CsvTest, RoundTripPreservesValues) {
  TableBuilder b(Schema(std::vector<std::string>{"n", "s", "weird,name"}));
  b.AddRow({Value(int64_t{-3}), Value("plain"), Value("a,b")});
  b.AddRow({Value(int64_t{9}), Value("quote\"inside"), Value::Null()});
  Table t = b.Build();

  std::string p = Path("round.csv");
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, p).ok());
  Table back;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &back).ok());
  ASSERT_EQ(back.num_rows(), 2);
  EXPECT_EQ(back.schema().name(2), "weird,name");
  EXPECT_EQ(back.value(0, 0), Value(int64_t{-3}));
  EXPECT_EQ(back.value(0, 2), Value("a,b"));
  EXPECT_EQ(back.value(1, 1), Value("quote\"inside"));
  EXPECT_TRUE(back.value(1, 2).is_null());
}

TEST_F(CsvTest, QuotedFieldWithEmbeddedNewline) {
  // RFC 4180: a quoted field may span lines. The old per-line reader split
  // this record in two; the batch scanner must keep it whole.
  std::string p = Path("embednl.csv");
  WriteFile(p, "id,note\n1,\"line one\nline two\"\n2,plain\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.value(0, 1), Value("line one\nline two"));
  EXPECT_EQ(t.value(1, 1), Value("plain"));
}

TEST_F(CsvTest, QuotedFieldWithEmbeddedCrlfKeepsCarriageReturn) {
  // Outside quotes '\r' is stripped as part of CRLF handling; inside quotes
  // it is data.
  std::string p = Path("embedcrlf.csv");
  WriteFile(p, "a,b\r\n\"x\r\ny\",2\r\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  ASSERT_EQ(t.num_rows(), 1);
  EXPECT_EQ(t.value(0, 0), Value("x\r\ny"));
}

TEST_F(CsvTest, EmbeddedNewlineRecordSpanningReadBuffers) {
  // A quoted field long enough to straddle the reader's 64 KiB refill
  // boundary, with newlines sprinkled through it.
  std::string big;
  for (int i = 0; i < 9000; ++i) {
    big += "word" + std::to_string(i);
    big += (i % 11 == 0) ? '\n' : ' ';
  }
  std::string p = Path("bigquote.csv");
  WriteFile(p, "a,b\n\"" + big + "\",7\n1,2\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  ASSERT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.value(0, 0), Value(big));
  EXPECT_EQ(t.value(0, 1), Value(int64_t{7}));
}

TEST_F(CsvTest, UnterminatedQuoteAtEofFails) {
  std::string p = Path("unterm.csv");
  WriteFile(p, "a,b\n1,\"oops\nstill open");
  Table t;
  Status s = ReadCsv(p, CsvOptions{}, &t);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST_F(CsvTest, EmbeddedNewlineRoundTrip) {
  TableBuilder b(Schema(std::vector<std::string>{"k", "text"}));
  b.AddRow({Value(int64_t{1}), Value("a\nb")});
  b.AddRow({Value(int64_t{2}), Value("c\r\nd,e\"f")});
  Table t = b.Build();
  std::string p = Path("nlround.csv");
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, p).ok());
  Table back;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &back).ok());
  ASSERT_EQ(back.num_rows(), 2);
  EXPECT_EQ(back.value(0, 1), Value("a\nb"));
  EXPECT_EQ(back.value(1, 1), Value("c\r\nd,e\"f"));
}

TEST_F(CsvTest, CustomDelimiter) {
  std::string p = Path("tsv.csv");
  WriteFile(p, "a\tb\n1\t2\n");
  CsvOptions opts;
  opts.delimiter = '\t';
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.value(0, 1), Value(int64_t{2}));
}

}  // namespace
}  // namespace gordian
