// Unit tests for CSV reading/writing: quoting, type inference, error paths,
// and lossless round-trips.

#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

namespace gordian {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    return ::testing::TempDir() + "gordian_csv_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream os(path);
    os << content;
  }
};

TEST_F(CsvTest, SplitBasic) {
  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvRecord("a,b,,d", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b", "", "d"}));
}

TEST_F(CsvTest, SplitQuotedWithEmbeddedDelimiterAndQuotes) {
  std::vector<std::string> fields;
  ASSERT_TRUE(SplitCsvRecord("\"a,b\",\"he said \"\"hi\"\"\"", ',', &fields).ok());
  EXPECT_EQ(fields, (std::vector<std::string>{"a,b", "he said \"hi\""}));
}

TEST_F(CsvTest, SplitUnterminatedQuoteFails) {
  std::vector<std::string> fields;
  EXPECT_FALSE(SplitCsvRecord("\"oops", ',', &fields).ok());
}

TEST_F(CsvTest, ReadWithHeaderAndTypeInference) {
  std::string p = Path("infer.csv");
  WriteFile(p, "id,name,score\n1,alpha,1.5\n2,beta,\n3,07x,2\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  EXPECT_EQ(t.num_rows(), 3);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.schema().name(0), "id");
  EXPECT_EQ(t.value(0, 0), Value(int64_t{1}));
  EXPECT_EQ(t.value(0, 2), Value(1.5));
  EXPECT_TRUE(t.value(1, 2).is_null());     // empty field
  EXPECT_EQ(t.value(2, 1), Value("07x"));   // non-numeric stays string
  EXPECT_EQ(t.value(2, 2), Value(int64_t{2}));
}

TEST_F(CsvTest, ReadWithoutHeaderNamesColumns) {
  std::string p = Path("nohdr.csv");
  WriteFile(p, "1,2\n3,4\n");
  CsvOptions opts;
  opts.has_header = false;
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.schema().name(0), "c0");
  EXPECT_EQ(t.schema().name(1), "c1");
}

TEST_F(CsvTest, ReadWithoutInferenceKeepsStrings) {
  std::string p = Path("str.csv");
  WriteFile(p, "a\n1\n");
  CsvOptions opts;
  opts.infer_types = false;
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.value(0, 0), Value("1"));
}

TEST_F(CsvTest, ReadRejectsRaggedRows) {
  std::string p = Path("ragged.csv");
  WriteFile(p, "a,b\n1,2\n3\n");
  Table t;
  Status s = ReadCsv(p, CsvOptions{}, &t);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST_F(CsvTest, ReadMissingFileFails) {
  Table t;
  EXPECT_EQ(ReadCsv("/no/such/file.csv", CsvOptions{}, &t).code(),
            Status::Code::kIOError);
}

TEST_F(CsvTest, ReadEmptyFileFails) {
  std::string p = Path("empty.csv");
  WriteFile(p, "");
  Table t;
  EXPECT_FALSE(ReadCsv(p, CsvOptions{}, &t).ok());
}

TEST_F(CsvTest, ToleratesCrlfAndBlankLines) {
  std::string p = Path("crlf.csv");
  WriteFile(p, "a,b\r\n1,2\r\n\r\n3,4\r\n");
  Table t;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.value(1, 1), Value(int64_t{4}));
}

TEST_F(CsvTest, RoundTripPreservesValues) {
  TableBuilder b(Schema(std::vector<std::string>{"n", "s", "weird,name"}));
  b.AddRow({Value(int64_t{-3}), Value("plain"), Value("a,b")});
  b.AddRow({Value(int64_t{9}), Value("quote\"inside"), Value::Null()});
  Table t = b.Build();

  std::string p = Path("round.csv");
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, p).ok());
  Table back;
  ASSERT_TRUE(ReadCsv(p, CsvOptions{}, &back).ok());
  ASSERT_EQ(back.num_rows(), 2);
  EXPECT_EQ(back.schema().name(2), "weird,name");
  EXPECT_EQ(back.value(0, 0), Value(int64_t{-3}));
  EXPECT_EQ(back.value(0, 2), Value("a,b"));
  EXPECT_EQ(back.value(1, 1), Value("quote\"inside"));
  EXPECT_TRUE(back.value(1, 2).is_null());
}

TEST_F(CsvTest, CustomDelimiter) {
  std::string p = Path("tsv.csv");
  WriteFile(p, "a\tb\n1\t2\n");
  CsvOptions opts;
  opts.delimiter = '\t';
  Table t;
  ASSERT_TRUE(ReadCsv(p, opts, &t).ok());
  EXPECT_EQ(t.num_columns(), 2);
  EXPECT_EQ(t.value(0, 1), Value(int64_t{2}));
}

}  // namespace
}  // namespace gordian
