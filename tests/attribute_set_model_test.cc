// Reference-model property test: AttributeSet against std::bitset<128>
// under long random operation sequences. The bitmap is the innermost data
// structure of the whole library, so it gets the heaviest differential
// testing.

#include <gtest/gtest.h>

#include <bitset>

#include "common/attribute_set.h"
#include "common/random.h"

namespace gordian {
namespace {

class Model {
 public:
  void Set(int i) { bits_.set(i); }
  void Reset(int i) { bits_.reset(i); }
  bool Test(int i) const { return bits_.test(i); }
  int Count() const { return static_cast<int>(bits_.count()); }
  bool Empty() const { return bits_.none(); }
  bool Covers(const Model& other) const {
    return (other.bits_ & ~bits_).none();
  }
  bool Intersects(const Model& other) const {
    return (bits_ & other.bits_).any();
  }
  Model Union(const Model& o) const { return Model(bits_ | o.bits_); }
  Model Intersect(const Model& o) const { return Model(bits_ & o.bits_); }
  Model Minus(const Model& o) const { return Model(bits_ & ~o.bits_); }
  int First() const {
    for (int i = 0; i < 128; ++i) {
      if (bits_.test(i)) return i;
    }
    return -1;
  }
  int Next(int after) const {
    for (int i = after + 1; i < 128; ++i) {
      if (bits_.test(i)) return i;
    }
    return -1;
  }

  Model() = default;
  explicit Model(std::bitset<128> b) : bits_(b) {}
  std::bitset<128> bits_;
};

void ExpectAgree(const AttributeSet& s, const Model& m) {
  ASSERT_EQ(s.Count(), m.Count());
  ASSERT_EQ(s.Empty(), m.Empty());
  ASSERT_EQ(s.First(), m.First());
  for (int i = 0; i < 128; i += 7) {
    ASSERT_EQ(s.Test(i), m.Test(i)) << i;
    ASSERT_EQ(s.Next(i), m.Next(i)) << i;
  }
}

struct SeedCase {
  uint64_t seed;
  int steps;
};

class AttributeSetModel : public ::testing::TestWithParam<SeedCase> {};

TEST_P(AttributeSetModel, LongOperationSequencesAgree) {
  Random rng(GetParam().seed);
  AttributeSet a, b;
  Model ma, mb;
  for (int step = 0; step < GetParam().steps; ++step) {
    int op = static_cast<int>(rng.Uniform(8));
    int bit = static_cast<int>(rng.Uniform(128));
    switch (op) {
      case 0:
        a.Set(bit);
        ma.Set(bit);
        break;
      case 1:
        a.Reset(bit);
        ma.Reset(bit);
        break;
      case 2:
        b.Set(bit);
        mb.Set(bit);
        break;
      case 3:
        b.Reset(bit);
        mb.Reset(bit);
        break;
      case 4: {
        AttributeSet u = a | b;
        Model mu = ma.Union(mb);
        ExpectAgree(u, mu);
        break;
      }
      case 5: {
        AttributeSet i = a & b;
        Model mi = ma.Intersect(mb);
        ExpectAgree(i, mi);
        break;
      }
      case 6: {
        AttributeSet d = a - b;
        Model md = ma.Minus(mb);
        ExpectAgree(d, md);
        break;
      }
      default:
        ASSERT_EQ(a.Covers(b), ma.Covers(mb));
        ASSERT_EQ(b.Covers(a), mb.Covers(ma));
        ASSERT_EQ(a.Intersects(b), ma.Intersects(mb));
        ASSERT_EQ(a == b, ma.bits_ == mb.bits_);
        break;
    }
    ExpectAgree(a, ma);
    ExpectAgree(b, mb);
  }

  // ForEach enumerates exactly the model's members, in order.
  std::vector<int> members;
  a.ForEach([&](int i) { members.push_back(i); });
  std::vector<int> expected;
  for (int i = 0; i < 128; ++i) {
    if (ma.Test(i)) expected.push_back(i);
  }
  EXPECT_EQ(members, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttributeSetModel,
                         ::testing::Values(SeedCase{1, 2000}, SeedCase{2, 2000},
                                           SeedCase{3, 2000}, SeedCase{4, 500},
                                           SeedCase{5, 500}, SeedCase{6, 500},
                                           SeedCase{7, 500}, SeedCase{8, 500}),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param.seed);
                         });

// Ordering is consistent with equality and total over random sets.
TEST(AttributeSetModelExtra, OrderingIsATotalOrder) {
  Random rng(99);
  std::vector<AttributeSet> sets;
  for (int i = 0; i < 50; ++i) {
    AttributeSet s;
    for (int b = 0; b < 128; ++b) {
      if (rng.Bernoulli(0.2)) s.Set(b);
    }
    sets.push_back(s);
  }
  for (const AttributeSet& x : sets) {
    EXPECT_FALSE(x < x);
    for (const AttributeSet& y : sets) {
      EXPECT_EQ(x == y, !(x < y) && !(y < x));
      for (const AttributeSet& z : sets) {
        if (x < y && y < z) {
          EXPECT_TRUE(x < z);
        }
      }
    }
  }
}

}  // namespace
}  // namespace gordian
