// Fault-injection coverage for the RPC framing and wire codecs of src/net:
// short reads and writes, mid-frame disconnects, garbage frames, oversized
// lengths, and codec round-trips — the socket-side counterpart of the
// catalog crash matrix in catalog_store_test.cc.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/gordian.h"
#include "net/byte_stream.h"
#include "net/frame.h"
#include "net/wire.h"
#include "service/key_catalog.h"

namespace gordian {
namespace {

Frame MakeRequest(uint64_t id, const std::string& payload) {
  Frame f;
  f.type = FrameType::kRequest;
  f.method = RpcMethod::kProfile;
  f.request_id = id;
  f.deadline_millis = 1500;
  f.payload = payload;
  return f;
}

// Serializes `frame` into raw wire bytes via a MemoryStream.
std::string WireBytes(const Frame& frame) {
  MemoryStream out;
  EXPECT_TRUE(WriteFrame(out, frame).ok());
  return out.output();
}

KeyDiscoveryResult MakeResult() {
  KeyDiscoveryResult r;
  DiscoveredKey k;
  k.attrs = AttributeSet{0, 2, 5};
  k.estimated_strength = 0.75;
  k.exact_strength = 1.0;
  r.keys.push_back(k);
  DiscoveredKey k2;
  k2.attrs = AttributeSet::Single(1);
  k2.estimated_strength = 1.0;
  k2.exact_strength = 1.0;
  r.keys.push_back(k2);
  r.non_keys.push_back(AttributeSet{3, 4});
  r.stats.rows_processed = 1234;
  return r;
}

// ------------------------------------------------------------------ framing

TEST(Frame, RoundTripsThroughAStream) {
  Frame in = MakeRequest(42, std::string("hello\0world", 11));
  MemoryStream pipe(WireBytes(in));
  Frame out;
  ASSERT_TRUE(ReadFrame(pipe, &out).ok());
  EXPECT_EQ(out.request_id, 42u);
  EXPECT_EQ(out.type, FrameType::kRequest);
  EXPECT_EQ(out.method, RpcMethod::kProfile);
  EXPECT_EQ(out.status_code, Status::Code::kOk);
  EXPECT_EQ(out.deadline_millis, 1500u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Frame, SurvivesOneByteReads) {
  // A TCP peer may deliver a frame in arbitrarily small pieces; ReadExact
  // must reassemble it regardless of chunking.
  Frame in = MakeRequest(7, std::string(300, 'x'));
  in.status_code = Status::Code::kUnavailable;
  MemoryStream pipe(WireBytes(in), /*max_chunk=*/1);
  Frame out;
  ASSERT_TRUE(ReadFrame(pipe, &out).ok());
  EXPECT_EQ(out.payload, in.payload);
  EXPECT_EQ(out.status_code, Status::Code::kUnavailable);
}

TEST(Frame, BackToBackFramesThenCleanEof) {
  std::string bytes = WireBytes(MakeRequest(1, "a")) +
                      WireBytes(MakeRequest(2, "bb"));
  MemoryStream pipe(bytes, /*max_chunk=*/5);
  Frame out;
  ASSERT_TRUE(ReadFrame(pipe, &out).ok());
  EXPECT_EQ(out.request_id, 1u);
  ASSERT_TRUE(ReadFrame(pipe, &out).ok());
  EXPECT_EQ(out.request_id, 2u);
  // The stream ends exactly on a frame boundary: that is a peer hanging up
  // politely, reported as NotFound so server loops exit quietly.
  Status s = ReadFrame(pipe, &out);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
}

TEST(Frame, EveryTruncationPointIsTornOrClean) {
  // Cut the two-frame byte stream at every possible offset. A cut at 0 or
  // exactly between frames is a clean hang-up (NotFound); anywhere else is
  // a torn frame (IOError). Nothing may succeed past the cut, and nothing
  // may be misread as garbage (InvalidArgument) — truncation is a
  // transport problem, not a protocol violation.
  const std::string first = WireBytes(MakeRequest(1, "payload-one"));
  const std::string bytes = first + WireBytes(MakeRequest(2, "payload-two"));
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    MemoryStream pipe(bytes.substr(0, cut), /*max_chunk=*/3);
    Frame out;
    Status s = ReadFrame(pipe, &out);
    if (cut < first.size()) {
      if (cut == 0) {
        EXPECT_EQ(s.code(), Status::Code::kNotFound) << "cut at " << cut;
      } else {
        EXPECT_EQ(s.code(), Status::Code::kIOError) << "cut at " << cut;
      }
      continue;
    }
    ASSERT_TRUE(s.ok()) << "cut at " << cut << ": " << s.ToString();
    s = ReadFrame(pipe, &out);
    if (cut == first.size()) {
      EXPECT_EQ(s.code(), Status::Code::kNotFound) << "cut at " << cut;
    } else {
      EXPECT_EQ(s.code(), Status::Code::kIOError) << "cut at " << cut;
    }
  }
}

TEST(Frame, RejectsGarbage) {
  Frame out;
  // Bad magic.
  std::string bytes = WireBytes(MakeRequest(1, "x"));
  bytes[0] = 'X';
  {
    MemoryStream pipe(bytes);
    EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
  }
  // Unknown frame type.
  bytes = WireBytes(MakeRequest(1, "x"));
  bytes[16] = 9;
  {
    MemoryStream pipe(bytes);
    EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
  }
  // Unknown method.
  bytes = WireBytes(MakeRequest(1, "x"));
  bytes[17] = 0;
  {
    MemoryStream pipe(bytes);
    EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
  }
  // Nonzero reserved byte.
  bytes = WireBytes(MakeRequest(1, "x"));
  bytes[19] = 1;
  {
    MemoryStream pipe(bytes);
    EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
  }
  // Pure noise.
  {
    MemoryStream pipe(std::string(64, '\xAB'));
    EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
  }
}

TEST(Frame, RejectsOversizedLengthWithoutAllocating) {
  // A corrupt or hostile length field must be refused from the header
  // alone — the 4 GiB payload it promises is never read or allocated.
  std::string bytes = WireBytes(MakeRequest(1, "x"));
  bytes[4] = '\xFF';
  bytes[5] = '\xFF';
  bytes[6] = '\xFF';
  bytes[7] = '\xFF';
  MemoryStream pipe(bytes);
  Frame out;
  EXPECT_EQ(ReadFrame(pipe, &out).code(), Status::Code::kInvalidArgument);
}

TEST(Frame, RefusesToWriteOversizedPayload) {
  Frame f = MakeRequest(1, "");
  f.payload.resize(kMaxFramePayload + 1);
  MemoryStream out;
  EXPECT_EQ(WriteFrame(out, f).code(), Status::Code::kInvalidArgument);
  EXPECT_TRUE(out.output().empty());
}

TEST(Frame, StatusCodesSurviveTheWire) {
  const Status::Code codes[] = {
      Status::Code::kOk,          Status::Code::kInvalidArgument,
      Status::Code::kNotFound,    Status::Code::kIOError,
      Status::Code::kOutOfRange,  Status::Code::kUnsupported,
      Status::Code::kPartial,     Status::Code::kUnavailable,
      Status::Code::kDeadlineExceeded,
  };
  for (Status::Code code : codes) {
    EXPECT_EQ(StatusCodeFromWire(StatusCodeToWire(code)), code);
  }
  // A wire byte from a newer protocol decodes as a transport problem.
  EXPECT_EQ(StatusCodeFromWire(200), Status::Code::kIOError);
}

// --------------------------------------------------------- injected faults

TEST(Frame, InjectedReadErrorSurfacesAsIs) {
  MemoryStream base(WireBytes(MakeRequest(5, "abcdef")));
  FaultInjectionStream faulty(&base);
  NetFaultSpec spec;
  spec.op = NetOp::kRead;
  spec.countdown_bytes = 10;  // inside the header
  spec.kind = NetFaultSpec::Kind::kError;
  spec.message = "cable cut";
  faulty.Arm(spec);
  Frame out;
  Status s = ReadFrame(faulty, &out);
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  EXPECT_NE(s.ToString().find("cable cut"), std::string::npos);
  EXPECT_TRUE(faulty.fired());
}

TEST(Frame, MidPayloadDisconnectIsATornFrame) {
  MemoryStream base(WireBytes(MakeRequest(5, std::string(100, 'p'))));
  FaultInjectionStream faulty(&base);
  NetFaultSpec spec;
  spec.op = NetOp::kRead;
  spec.countdown_bytes = kFrameHeaderBytes + 40;  // mid-payload
  spec.kind = NetFaultSpec::Kind::kDisconnect;
  faulty.Arm(spec);
  Frame out;
  EXPECT_EQ(ReadFrame(faulty, &out).code(), Status::Code::kIOError);
}

TEST(Frame, DisconnectBeforeAnyByteIsClean) {
  MemoryStream base(WireBytes(MakeRequest(5, "x")));
  FaultInjectionStream faulty(&base);
  NetFaultSpec spec;
  spec.op = NetOp::kRead;
  spec.countdown_bytes = 0;
  spec.kind = NetFaultSpec::Kind::kDisconnect;
  faulty.Arm(spec);
  Frame out;
  EXPECT_EQ(ReadFrame(faulty, &out).code(), Status::Code::kNotFound);
}

TEST(Frame, ShortWriteFailsTheSend) {
  // The peer sees only a prefix; the sender must see a failure rather than
  // believe the frame went out.
  MemoryStream base;
  FaultInjectionStream faulty(&base);
  NetFaultSpec spec;
  spec.op = NetOp::kWrite;
  spec.countdown_bytes = 12;
  spec.kind = NetFaultSpec::Kind::kError;
  faulty.Arm(spec);
  Status s = WriteFrame(faulty, MakeRequest(9, "some payload"));
  EXPECT_EQ(s.code(), Status::Code::kIOError);
  // The torn prefix reached the wire — exactly `countdown_bytes` of it.
  EXPECT_EQ(base.output().size(), 12u);
  // And the reader on the far side sees a torn frame.
  MemoryStream reader(base.output());
  Frame out;
  EXPECT_EQ(ReadFrame(reader, &out).code(), Status::Code::kIOError);
}

// -------------------------------------------------------------- wire codecs

TEST(Wire, ProfileRequestRoundTrip) {
  ProfileRequest in;
  in.fingerprint = 0xDEADBEEFCAFEF00Dull;
  in.client_id = "tenant-7";
  in.table_name = "orders";
  in.priority = 3;
  in.use_catalog = false;
  in.use_tree_cache = true;
  in.sample_rows = 1000;
  in.sample_seed = 99;
  in.table_bytes = std::string("GRDT\x01\x02\x03", 7);
  std::string bytes;
  EncodeProfileRequest(in, &bytes);

  ProfileRequest out;
  ASSERT_TRUE(DecodeProfileRequest(bytes, &out).ok());
  EXPECT_EQ(out.fingerprint, in.fingerprint);
  EXPECT_EQ(out.client_id, in.client_id);
  EXPECT_EQ(out.table_name, in.table_name);
  EXPECT_EQ(out.priority, in.priority);
  EXPECT_EQ(out.use_catalog, in.use_catalog);
  EXPECT_EQ(out.use_tree_cache, in.use_tree_cache);
  EXPECT_EQ(out.sample_rows, in.sample_rows);
  EXPECT_EQ(out.sample_seed, in.sample_seed);
  EXPECT_EQ(out.table_bytes, in.table_bytes);

  // The router's fast path: fingerprint + client id from the prefix alone.
  uint64_t fp = 0;
  std::string client;
  ASSERT_TRUE(DecodeProfileRequestPrefix(bytes, &fp, &client).ok());
  EXPECT_EQ(fp, in.fingerprint);
  EXPECT_EQ(client, in.client_id);
}

TEST(Wire, ProfileResponseRoundTripIncludingIncomplete) {
  ProfileResponse in;
  in.fingerprint = 17;
  in.cache_hit = true;
  in.follower_hit = true;
  in.served_by = "owner-08-15";
  in.result = MakeResult();
  in.result.incomplete = true;
  in.result.incomplete_reason = AbortReason::kTimeBudget;
  std::string bytes;
  EncodeProfileResponse(in, &bytes);

  ProfileResponse out;
  ASSERT_TRUE(DecodeProfileResponse(bytes, &out).ok());
  EXPECT_EQ(out.fingerprint, 17u);
  EXPECT_TRUE(out.cache_hit);
  EXPECT_TRUE(out.follower_hit);
  EXPECT_FALSE(out.tree_cache_hit);
  EXPECT_EQ(out.served_by, "owner-08-15");
  EXPECT_TRUE(out.result.incomplete);
  EXPECT_EQ(out.result.incomplete_reason, AbortReason::kTimeBudget);
  ASSERT_EQ(out.result.keys.size(), 2u);
  EXPECT_EQ(out.result.keys[0].attrs, in.result.keys[0].attrs);
  EXPECT_DOUBLE_EQ(out.result.keys[0].estimated_strength, 0.75);
  EXPECT_EQ(out.result.non_keys, in.result.non_keys);
}

TEST(Wire, HealthInfoRoundTrip) {
  HealthInfo in;
  in.role = HealthInfo::Role::kRouter;
  in.accepting = false;
  in.shard_first = 4;
  in.shard_last = 11;
  in.queue_depth = 12;
  in.running_jobs = 3;
  in.active_rpcs = 5;
  in.catalog_entries = 999;
  in.workers_up = 2;
  in.workers_total = 3;
  std::string bytes;
  EncodeHealthInfo(in, &bytes);
  HealthInfo out;
  ASSERT_TRUE(DecodeHealthInfo(bytes, &out).ok());
  EXPECT_EQ(out.role, HealthInfo::Role::kRouter);
  EXPECT_FALSE(out.accepting);
  EXPECT_EQ(out.shard_first, 4);
  EXPECT_EQ(out.shard_last, 11);
  EXPECT_EQ(out.queue_depth, 12);
  EXPECT_EQ(out.running_jobs, 3);
  EXPECT_EQ(out.active_rpcs, 5);
  EXPECT_EQ(out.catalog_entries, 999);
  EXPECT_EQ(out.workers_up, 2);
  EXPECT_EQ(out.workers_total, 3);
}

TEST(Wire, DecodersRejectTruncationAtEveryOffset) {
  // Like the framing truncation matrix, but for the payload codecs: any
  // proper prefix must decode to InvalidArgument, never crash or succeed.
  ProfileRequest req;
  req.fingerprint = 123;
  req.client_id = "c";
  req.table_name = "t";
  req.table_bytes = "0123456789";
  std::string bytes;
  EncodeProfileRequest(req, &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ProfileRequest out;
    EXPECT_EQ(DecodeProfileRequest(bytes.substr(0, cut), &out).code(),
              Status::Code::kInvalidArgument)
        << "cut at " << cut;
  }

  ProfileResponse resp;
  resp.result = MakeResult();
  bytes.clear();
  EncodeProfileResponse(resp, &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ProfileResponse out;
    EXPECT_EQ(DecodeProfileResponse(bytes.substr(0, cut), &out).code(),
              Status::Code::kInvalidArgument)
        << "cut at " << cut;
  }
}

TEST(Wire, DecodersSurviveNoise) {
  // Random-ish bytes must come back as InvalidArgument, not allocate wildly
  // or crash. Derives the noise deterministically so failures reproduce.
  uint64_t x = 88172645463325252ull;
  for (int round = 0; round < 200; ++round) {
    std::string noise;
    for (int i = 0; i < 64; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      noise.push_back(static_cast<char>(x & 0xFF));
    }
    ProfileRequest req;
    EXPECT_FALSE(DecodeProfileRequest(noise, &req).ok());
    ProfileResponse resp;
    EXPECT_FALSE(DecodeProfileResponse(noise, &resp).ok());
    HealthInfo info;
    EXPECT_FALSE(DecodeHealthInfo(noise, &info).ok());
  }
}

TEST(Wire, ParseShardRange) {
  int first = -1, last = -1;
  ASSERT_TRUE(ParseShardRange("0-7", &first, &last).ok());
  EXPECT_EQ(first, 0);
  EXPECT_EQ(last, 7);
  ASSERT_TRUE(ParseShardRange("15", &first, &last).ok());
  EXPECT_EQ(first, 15);
  EXPECT_EQ(last, 15);
  EXPECT_FALSE(ParseShardRange("", &first, &last).ok());
  EXPECT_FALSE(ParseShardRange("7-0", &first, &last).ok());
  EXPECT_FALSE(ParseShardRange("0-16", &first, &last).ok());
  EXPECT_FALSE(ParseShardRange("a-b", &first, &last).ok());
  EXPECT_FALSE(ParseShardRange("1-2-3", &first, &last).ok());
}

}  // namespace
}  // namespace gordian
