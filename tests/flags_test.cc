// Tests for the minimal command-line flag parser used by the examples.

#include "common/flags.h"

#include <gtest/gtest.h>

namespace gordian {
namespace {

Flags Parse(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  return Flags(static_cast<int>(args.size()),
               const_cast<char**>(args.data()));
}

TEST(Flags, EqualsSyntax) {
  Flags f = Parse({"--name=value", "--n=42", "--d=2.5"});
  EXPECT_TRUE(f.Has("name"));
  EXPECT_EQ(f.GetString("name"), "value");
  EXPECT_EQ(f.GetInt("n"), 42);
  EXPECT_DOUBLE_EQ(f.GetDouble("d"), 2.5);
}

TEST(Flags, SpaceSeparatedValue) {
  Flags f = Parse({"--out", "file.json", "rest.csv"});
  EXPECT_EQ(f.GetString("out"), "file.json");
  ASSERT_EQ(f.positional().size(), 1u);
  EXPECT_EQ(f.positional()[0], "rest.csv");
}

TEST(Flags, BareSwitchBeforeAnotherFlag) {
  Flags f = Parse({"--verbose", "--out=x"});
  EXPECT_TRUE(f.GetBool("verbose"));
  EXPECT_EQ(f.GetString("out"), "x");
}

TEST(Flags, BoolParsing) {
  Flags f = Parse({"--a=true", "--b=false", "--c=0", "--d=1"});
  EXPECT_TRUE(f.GetBool("a"));
  EXPECT_FALSE(f.GetBool("b"));
  EXPECT_FALSE(f.GetBool("c"));
  EXPECT_TRUE(f.GetBool("d"));
  EXPECT_TRUE(f.GetBool("missing", true));
  EXPECT_FALSE(f.GetBool("missing", false));
}

TEST(Flags, DefaultsForMissingFlags) {
  Flags f = Parse({"pos1", "pos2"});
  EXPECT_FALSE(f.Has("x"));
  EXPECT_EQ(f.GetString("x", "dflt"), "dflt");
  EXPECT_EQ(f.GetInt("x", 7), 7);
  EXPECT_EQ(f.positional(), (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(Flags, ThreadCountConvention) {
  // Explicit positive values pass through; absent or zero means one worker
  // per hardware thread, never fewer than one.
  EXPECT_EQ(Parse({"--threads=3"}).ThreadCount(), 3);
  EXPECT_EQ(Parse({"--workers=5"}).ThreadCount("workers"), 5);
  EXPECT_GE(Parse({}).ThreadCount(), 1);
  EXPECT_EQ(Parse({"--threads=0"}).ThreadCount(), Parse({}).ThreadCount());
}

TEST(Flags, PositionalAndFlagsInterleaved) {
  Flags f = Parse({"a.csv", "--sample=10", "b.csv"});
  EXPECT_EQ(f.GetInt("sample"), 10);
  EXPECT_EQ(f.positional(),
            (std::vector<std::string>{"a.csv", "b.csv"}));
}

}  // namespace
}  // namespace gordian
