// Property suite for the parallel slice traversal (docs/parallel.md): on
// randomized datagen tables, FindKeys with traversal_threads in {1, 2, 8}
// must produce byte-identical reports to the serial traversal — same keys,
// same strengths, same canonically ordered non-keys — and budget trips and
// cancellation must abort cleanly in both modes.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/gordian.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// Baseline options that stay serial even when the suite runs under
// GORDIAN_THREADS (CI does exactly that).
GordianOptions ForcedSerial() {
  GordianOptions o;
  o.traversal_threads = -1;
  return o;
}

struct ParallelCase {
  int rows;
  int cols;
  uint64_t cardinality;
  double theta;
  bool plant_pair_key;
  bool correlate;
  uint64_t seed;

  std::string Name() const {
    return "r" + std::to_string(rows) + "_c" + std::to_string(cols) + "_k" +
           std::to_string(cardinality) + "_t" +
           std::to_string(static_cast<int>(theta * 10)) +
           (plant_pair_key ? "_planted" : "") + (correlate ? "_corr" : "") +
           "_s" + std::to_string(seed);
  }
};

Table MakeTable(const ParallelCase& c) {
  SyntheticSpec spec =
      UniformSpec(c.cols, c.rows, c.cardinality, c.theta, c.seed);
  if (c.plant_pair_key && c.cols >= 2) {
    uint64_t need = 8;
    while (need * need < static_cast<uint64_t>(c.rows) * 2) need *= 2;
    spec.columns[0].cardinality = std::max<uint64_t>(c.cardinality, need);
    spec.columns[1].cardinality = std::max<uint64_t>(c.cardinality, need);
    spec.planted_keys.push_back({0, 1});
  }
  if (c.correlate && c.cols >= 4) {
    // Columns 0/1 may carry a planted key, which datagen refuses to also
    // correlate; use the tail columns for correlation structure.
    spec.columns[3].correlated_with = 2;
    spec.columns[3].correlation_noise = 0.05;
    if (c.cols >= 6) {
      spec.columns[5].correlated_with = 4;
      spec.columns[5].correlation_noise = 0.0;
    }
  }
  spec.ensure_unique_rows = true;
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return t;
}

// The acceptance bar: not just equal key sets, byte-identical reports.
void ExpectIdenticalResults(const Table& t, const KeyDiscoveryResult& serial,
                            const KeyDiscoveryResult& parallel,
                            const std::string& context) {
  EXPECT_EQ(serial.no_keys, parallel.no_keys) << context;
  EXPECT_EQ(serial.sampled, parallel.sampled) << context;
  EXPECT_EQ(serial.incomplete, parallel.incomplete) << context;
  ASSERT_EQ(serial.keys.size(), parallel.keys.size()) << context;
  for (size_t i = 0; i < serial.keys.size(); ++i) {
    EXPECT_EQ(serial.keys[i].attrs, parallel.keys[i].attrs) << context;
    EXPECT_EQ(serial.keys[i].estimated_strength,
              parallel.keys[i].estimated_strength)
        << context;
    EXPECT_EQ(serial.keys[i].exact_strength, parallel.keys[i].exact_strength)
        << context;
  }
  EXPECT_EQ(serial.non_keys, parallel.non_keys) << context;
  EXPECT_EQ(serial.stats.final_non_keys, parallel.stats.final_non_keys)
      << context;
  EXPECT_EQ(FormatResult(t, serial), FormatResult(t, parallel)) << context;
}

class ParallelVsSerial : public ::testing::TestWithParam<ParallelCase> {};

TEST_P(ParallelVsSerial, ReportsAreByteIdentical) {
  Table t = MakeTable(GetParam());
  KeyDiscoveryResult serial = FindKeys(t, ForcedSerial());
  EXPECT_EQ(serial.stats.traversal_threads_used, 0);
  for (int threads : kThreadCounts) {
    GordianOptions o;
    o.traversal_threads = threads;
    KeyDiscoveryResult parallel = FindKeys(t, o);
    ExpectIdenticalResults(t, serial, parallel,
                           "threads=" + std::to_string(threads));
  }
}

TEST_P(ParallelVsSerial, AgreesUnderEveryAttributeOrder) {
  Table t = MakeTable(GetParam());
  for (auto order : {GordianOptions::AttributeOrder::kSchema,
                     GordianOptions::AttributeOrder::kCardinalityAsc,
                     GordianOptions::AttributeOrder::kRandom}) {
    GordianOptions serial_opts = ForcedSerial();
    serial_opts.attribute_order = order;
    serial_opts.order_seed = 7;
    KeyDiscoveryResult serial = FindKeys(t, serial_opts);
    GordianOptions par_opts = serial_opts;
    par_opts.traversal_threads = 8;
    KeyDiscoveryResult parallel = FindKeys(t, par_opts);
    ExpectIdenticalResults(t, serial, parallel,
                           "order=" + std::to_string(static_cast<int>(order)));
  }
}

std::vector<ParallelCase> MakeSweep() {
  std::vector<ParallelCase> cases;
  uint64_t seed = 3;
  for (int rows : {2, 25, 200, 1000}) {
    for (int cols : {2, 4, 7}) {
      for (uint64_t card : {4ull, 64ull}) {
        long double space = 1;
        for (int c = 0; c < cols; ++c) space *= static_cast<long double>(card);
        if (space < rows * 2) continue;
        cases.push_back({rows, cols, card, 0.0, false, false, seed += 11});
        cases.push_back({rows, cols, card, 0.9, false, false, seed += 11});
      }
    }
  }
  cases.push_back({400, 6, 16, 0.5, true, false, 1001});
  cases.push_back({400, 6, 16, 0.5, false, true, 1002});
  cases.push_back({800, 8, 8, 0.3, true, true, 1003});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomTables, ParallelVsSerial,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const auto& info) { return info.param.Name(); });

// --- degenerate shapes (serial fallback paths) ----------------------------

TEST(ParallelEdge, TrivialTablesMatchSerial) {
  // Single row, empty table, single column: all fall back to the serial
  // traversal internally but must still report identically.
  {
    TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
    b.AddRow({Value(int64_t{1}), Value("x"), Value(2.0)});
    Table t = b.Build();
    GordianOptions o;
    o.traversal_threads = 8;
    ExpectIdenticalResults(t, FindKeys(t, ForcedSerial()), FindKeys(t, o),
                           "single-row");
  }
  {
    TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
    Table t = b.Build();
    GordianOptions o;
    o.traversal_threads = 8;
    ExpectIdenticalResults(t, FindKeys(t, ForcedSerial()), FindKeys(t, o),
                           "empty");
  }
}

TEST(ParallelEdge, DuplicateEntitiesNoKeys) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  Table t = b.Build();
  GordianOptions o;
  o.traversal_threads = 8;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_TRUE(r.no_keys);
  ExpectIdenticalResults(t, FindKeys(t, ForcedSerial()), r, "dupes");
}

// --- abort paths ----------------------------------------------------------

TEST(ParallelAbort, PreRaisedCancelFlag) {
  Table t = MakeTable({500, 6, 16, 0.5, true, false, 77});
  std::atomic<bool> cancel{true};
  for (int threads : kThreadCounts) {
    GordianOptions o;
    o.traversal_threads = threads;
    o.cancel_flag = &cancel;
    KeyDiscoveryResult r = FindKeys(t, o);
    EXPECT_TRUE(r.incomplete) << threads;
    EXPECT_EQ(r.incomplete_reason, AbortReason::kCancelled) << threads;
    EXPECT_TRUE(r.keys.empty()) << threads;
  }
}

TEST(ParallelAbort, CancelRaisedMidRun) {
  // The flag flips while workers are traversing; the run must come back
  // incomplete-with-kCancelled, never crash or deadlock. (Timing decides
  // how much work happened first; the outcome classification is what is
  // deterministic.)
  Table t = MakeTable({2000, 8, 6, 0.2, false, false, 55});
  std::atomic<bool> cancel{false};
  GordianOptions o;
  o.traversal_threads = 8;
  o.cancel_flag = &cancel;
  std::thread flipper([&cancel] { cancel.store(true); });
  KeyDiscoveryResult r = FindKeys(t, o);
  flipper.join();
  if (r.incomplete) {
    EXPECT_EQ(r.incomplete_reason, AbortReason::kCancelled);
    EXPECT_TRUE(r.keys.empty());
  }
}

TEST(ParallelAbort, NonKeyBudgetTripsInEveryMode) {
  // Low-cardinality wide data has far more than one non-redundant non-key,
  // so max_non_keys = 1 must trip: in serial mode inside the traversal, in
  // parallel mode either worker-locally or at the post-merge check.
  Table t = MakeTable({300, 7, 4, 0.0, false, false, 88});
  for (int threads : {-1, 0, 2, 8}) {
    GordianOptions o;
    o.traversal_threads = threads;
    o.max_non_keys = 1;
    KeyDiscoveryResult r = FindKeys(t, o);
    EXPECT_TRUE(r.incomplete) << threads;
    EXPECT_EQ(r.incomplete_reason, AbortReason::kNonKeyBudget) << threads;
    EXPECT_TRUE(r.keys.empty()) << threads;
  }
}

TEST(ParallelAbort, TimeBudgetTripsInEveryMode) {
  // A table big enough that every mode performs well over 4096 visits (the
  // budget check's amortization interval) with an unmeetably small budget.
  // Futility pruning is off so the visit count stays comfortably above the
  // interval in each worker.
  Table t = MakeTable({2000, 9, 4, 0.0, false, false, 99});
  GordianOptions probe_opts;
  probe_opts.futility_pruning = false;
  KeyDiscoveryResult probe = FindKeys(t, probe_opts);
  ASSERT_GT(probe.stats.nodes_visited, 10 * 4096)
      << "table too small to exercise the amortized clock check";
  for (int threads : {-1, 0, 2, 8}) {
    GordianOptions o;
    o.traversal_threads = threads;
    o.futility_pruning = false;
    o.time_budget_seconds = 1e-9;
    KeyDiscoveryResult r = FindKeys(t, o);
    EXPECT_TRUE(r.incomplete) << threads;
    EXPECT_EQ(r.incomplete_reason, AbortReason::kTimeBudget) << threads;
    EXPECT_TRUE(r.keys.empty()) << threads;
  }
}

TEST(ParallelStats, ThreadCountAndSnapshotCountersReported) {
  Table t = MakeTable({1000, 8, 8, 0.3, true, true, 1003});
  GordianOptions o;
  o.traversal_threads = 8;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_GE(r.stats.traversal_threads_used, 1);
  EXPECT_LE(r.stats.traversal_threads_used, 8);
  // Snapshot prunes are a subset of futility prunes by definition.
  EXPECT_LE(r.stats.futility_snapshot_prunes, r.stats.futility_prunes);
  EXPECT_GT(r.stats.peak_memory_bytes, 0);
}

}  // namespace
}  // namespace gordian
