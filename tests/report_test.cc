// Tests for the profiling report module: JSON output, DOT ER diagrams, and
// the ProfileDatabase driver.

#include "core/report.h"

#include <gtest/gtest.h>

#include "datagen/tpch_lite.h"

namespace gordian {
namespace {

struct TwoTables {
  Table customers;
  Table orders;
};

TwoTables MakeTwoTables() {
  TableBuilder cb(Schema(std::vector<std::string>{"cust_id", "name"}));
  for (int64_t i = 0; i < 40; ++i) {
    cb.AddRow({Value(i), Value("c" + std::to_string(i))});
  }
  TableBuilder ob(Schema(std::vector<std::string>{"order_id", "cust_ref"}));
  for (int64_t i = 0; i < 160; ++i) {
    ob.AddRow({Value(i), Value(i % 40)});
  }
  return {cb.Build(), ob.Build()};
}

DatabaseProfile MakeProfile(const TwoTables& tt, bool with_fks) {
  ForeignKeyOptions fk;
  fk.min_distinct_values = 10;
  return ProfileDatabase({{"customers", &tt.customers}, {"orders", &tt.orders}},
                         GordianOptions{}, with_fks, fk);
}

TEST(JsonEscape, EscapesControlAndSpecialCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(ProfileDatabase, ProfilesEveryTableAndFindsForeignKeys) {
  TwoTables tt = MakeTwoTables();
  DatabaseProfile p = MakeProfile(tt, /*with_fks=*/true);
  ASSERT_EQ(p.tables.size(), 2u);
  EXPECT_EQ(p.tables[0].name, "customers");
  EXPECT_FALSE(p.tables[0].result.keys.empty());
  EXPECT_FALSE(p.tables[1].result.keys.empty());
  // orders.cust_ref -> customers.cust_id must be among the candidates.
  bool found = false;
  for (const ForeignKeyCandidate& fk : p.foreign_keys) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0 &&
        fk.foreign_key_columns == std::vector<int>{1}) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(ProfileToJson, ContainsTheExpectedStructure) {
  TwoTables tt = MakeTwoTables();
  std::string json = ProfileToJson(MakeProfile(tt, /*with_fks=*/true));
  // Structural spot checks (no JSON parser in the toolchain).
  EXPECT_NE(json.find("\"tables\": ["), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"customers\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\": 40"), std::string::npos);
  EXPECT_NE(json.find("\"attributes\": [\"cust_id\", \"name\"]"),
            std::string::npos);
  EXPECT_NE(json.find("\"keys\": ["), std::string::npos);
  EXPECT_NE(json.find("\"cust_id\""), std::string::npos);
  EXPECT_NE(json.find("\"foreign_keys\": ["), std::string::npos);
  EXPECT_NE(json.find("\"coverage\": 1"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness check.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ProfileToJson, MarksSampledAndValidatedRuns) {
  auto db = GenerateTpchLite(0.002, 61);
  const Table* orders = nullptr;
  for (const auto& nt : db) {
    if (nt.name == "orders") orders = &nt.table;
  }
  ASSERT_NE(orders, nullptr);
  GordianOptions o;
  o.sample_rows = orders->num_rows() / 4;
  DatabaseProfile p = ProfileDatabase({{"orders", orders}}, o);
  std::string json = ProfileToJson(p);
  EXPECT_NE(json.find("\"sampled\": true"), std::string::npos);
  // Validation happened inside ProfileDatabase: exact strengths present.
  EXPECT_NE(json.find("\"strength\":"), std::string::npos);
}

TEST(ProfileToDot, EmitsNodesAndEdges) {
  TwoTables tt = MakeTwoTables();
  std::string dot = ProfileToDot(MakeProfile(tt, /*with_fks=*/true));
  EXPECT_EQ(dot.find("digraph schema {"), 0u);
  EXPECT_NE(dot.find("t0 [label=\"customers|"), std::string::npos);
  EXPECT_NE(dot.find("t1 [label=\"orders|"), std::string::npos);
  // PK candidate marked with "*".
  EXPECT_NE(dot.find("* cust_id"), std::string::npos);
  // FK edge from orders.cust_ref (column 1) to customers.cust_id (column 0).
  EXPECT_NE(dot.find("t1:f1 -> t0:f0;"), std::string::npos);
  EXPECT_EQ(dot.back(), '\n');
}

TEST(ProfileToDot, DashedEdgeForApproximateInclusion) {
  TwoTables tt = MakeTwoTables();
  DatabaseProfile p = MakeProfile(tt, /*with_fks=*/false);
  ForeignKeyCandidate fk;
  fk.referencing_table = 1;
  fk.referenced_table = 0;
  fk.foreign_key_columns = {1};
  fk.referenced_key = AttributeSet::Single(0);
  fk.coverage = 0.93;
  p.foreign_keys.push_back(fk);
  std::string dot = ProfileToDot(p);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("93%"), std::string::npos);
}

TEST(ProfileToDot, EscapesRecordCharactersInColumnNames) {
  TableBuilder b(Schema(std::vector<std::string>{"weird|name", "ok"}));
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{3}), Value(int64_t{4})});
  Table t = b.Build();
  DatabaseProfile p = ProfileDatabase({{"t", &t}});
  std::string dot = ProfileToDot(p);
  EXPECT_NE(dot.find("weird\\|name"), std::string::npos);
}

}  // namespace
}  // namespace gordian
