// Tests for foreign-key (inclusion dependency) discovery — the paper's
// stated future-work extension implemented in core/foreign_key.

#include "core/foreign_key.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/gordian.h"
#include "datagen/tpch_lite.h"

namespace gordian {
namespace {

// A small orders -> customers pair with a clean FK.
struct TwoTables {
  Table customers;
  Table orders;
};

TwoTables MakeTwoTables(bool dangling_reference) {
  TableBuilder cb(Schema(std::vector<std::string>{"cust_id", "name"}));
  for (int64_t i = 0; i < 50; ++i) {
    cb.AddRow({Value(i), Value("cust" + std::to_string(i))});
  }
  TableBuilder ob(
      Schema(std::vector<std::string>{"order_id", "cust_ref", "amount"}));
  for (int64_t i = 0; i < 200; ++i) {
    int64_t ref = i % 50;
    if (dangling_reference && i == 17) ref = 999;  // no such customer
    ob.AddRow({Value(i), Value(ref), Value(i * 3 % 97)});
  }
  return {cb.Build(), ob.Build()};
}

std::vector<ProfiledTable> Profile(const TwoTables& tt) {
  std::vector<ProfiledTable> tables;
  tables.push_back({"customers", &tt.customers,
                    FindKeys(tt.customers).KeySets()});
  tables.push_back({"orders", &tt.orders, FindKeys(tt.orders).KeySets()});
  return tables;
}

TEST(InclusionCoverage, ExactAndPartial) {
  TwoTables clean = MakeTwoTables(false);
  EXPECT_DOUBLE_EQ(InclusionCoverage(clean.orders, AttributeSet{1},
                                     clean.customers, AttributeSet{0}),
                   1.0);
  TwoTables dirty = MakeTwoTables(true);
  // 50 distinct refs + the dangling one: 50/51 covered.
  EXPECT_NEAR(InclusionCoverage(dirty.orders, AttributeSet{1},
                                dirty.customers, AttributeSet{0}),
              50.0 / 51.0, 1e-12);
}

TEST(DiscoverForeignKeys, FindsTheCleanReference) {
  TwoTables tt = MakeTwoTables(false);
  auto tables = Profile(tt);
  ForeignKeyOptions opts;
  opts.min_distinct_values = 10;
  auto fks = DiscoverForeignKeys(tables, opts);

  bool found = false;
  for (const ForeignKeyCandidate& fk : fks) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0 &&
        fk.foreign_key_columns == std::vector<int>{1} &&
        fk.referenced_key == AttributeSet{0}) {
      found = true;
      EXPECT_DOUBLE_EQ(fk.coverage, 1.0);
      EXPECT_EQ(fk.distinct_fk_tuples, 50);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoverForeignKeys, StrictModeRejectsDanglingReferences) {
  TwoTables tt = MakeTwoTables(true);
  auto tables = Profile(tt);
  ForeignKeyOptions strict;
  strict.min_distinct_values = 10;
  for (const ForeignKeyCandidate& fk : DiscoverForeignKeys(tables, strict)) {
    EXPECT_FALSE(fk.referencing_table == 1 && fk.referenced_table == 0 &&
                 fk.foreign_key_columns == std::vector<int>{1});
  }
  // Approximate mode keeps it.
  ForeignKeyOptions loose = strict;
  loose.min_coverage = 0.9;
  bool found = false;
  for (const ForeignKeyCandidate& fk : DiscoverForeignKeys(tables, loose)) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0 &&
        fk.foreign_key_columns == std::vector<int>{1}) {
      found = true;
      EXPECT_LT(fk.coverage, 1.0);
      EXPECT_GT(fk.coverage, 0.9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DiscoverForeignKeys, ReferencedCoverageComputedAndFilterable) {
  // Orders reference only the first 10 of 50 customers: the candidate's
  // referenced_coverage is 20%, so a 0.5 threshold drops it.
  TableBuilder cb(Schema(std::vector<std::string>{"cust_id"}));
  for (int64_t i = 0; i < 50; ++i) cb.AddRow({Value(i)});
  TableBuilder ob(Schema(std::vector<std::string>{"order_id", "cust_ref"}));
  for (int64_t i = 0; i < 200; ++i) {
    ob.AddRow({Value(i), Value(i % 10)});
  }
  Table customers = cb.Build(), orders = ob.Build();
  std::vector<ProfiledTable> tables;
  tables.push_back({"customers", &customers, FindKeys(customers).KeySets()});
  tables.push_back({"orders", &orders, FindKeys(orders).KeySets()});

  ForeignKeyOptions opts;
  opts.min_distinct_values = 5;
  bool found = false;
  for (const ForeignKeyCandidate& fk : DiscoverForeignKeys(tables, opts)) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0 &&
        fk.foreign_key_columns == std::vector<int>{1}) {
      found = true;
      EXPECT_NEAR(fk.referenced_coverage, 0.2, 1e-12);
    }
  }
  EXPECT_TRUE(found);

  opts.min_referenced_coverage = 0.5;
  for (const ForeignKeyCandidate& fk : DiscoverForeignKeys(tables, opts)) {
    EXPECT_FALSE(fk.referencing_table == 1 &&
                 fk.foreign_key_columns == std::vector<int>{1});
  }
}

TEST(DiscoverForeignKeys, MinDistinctFilterDropsTinyDomains) {
  TwoTables tt = MakeTwoTables(false);
  auto tables = Profile(tt);
  ForeignKeyOptions opts;
  opts.min_distinct_values = 1000;  // nothing qualifies
  EXPECT_TRUE(DiscoverForeignKeys(tables, opts).empty());
}

TEST(DiscoverForeignKeys, TypeCompatibilityFilter) {
  // A string column whose rendered values can never match integer keys;
  // with type checking off and a permissive threshold it is still not
  // covered, but the filter must remove it before any scan.
  TableBuilder kb(Schema(std::vector<std::string>{"id"}));
  TableBuilder fb(Schema(std::vector<std::string>{"ref"}));
  for (int64_t i = 0; i < 40; ++i) {
    kb.AddRow({Value(i)});
    fb.AddRow({Value("s" + std::to_string(i))});
  }
  Table keys = kb.Build(), refs = fb.Build();
  std::vector<ProfiledTable> tables;
  tables.push_back({"keys", &keys, FindKeys(keys).KeySets()});
  tables.push_back({"refs", &refs, FindKeys(refs).KeySets()});
  ForeignKeyOptions opts;
  opts.min_distinct_values = 10;
  opts.min_coverage = 0.0;
  auto found = DiscoverForeignKeys(tables, opts);
  for (const ForeignKeyCandidate& fk : found) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0) {
      ADD_FAILURE() << "string->int candidate should have been filtered";
    }
  }
}

TEST(DiscoverForeignKeys, TpchLineitemReferencesOrdersAndPartsupp) {
  auto db = GenerateTpchLite(0.002, 31);
  std::vector<ProfiledTable> tables;
  std::vector<KeyDiscoveryResult> results(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    results[i] = FindKeys(db[i].table);
    tables.push_back({db[i].name, &db[i].table, results[i].KeySets()});
  }
  ForeignKeyOptions opts;
  opts.min_distinct_values = 20;
  auto fks = DiscoverForeignKeys(tables, opts);

  auto index_of = [&](const std::string& name) {
    for (size_t i = 0; i < db.size(); ++i) {
      if (db[i].name == name) return static_cast<int>(i);
    }
    return -1;
  };
  int lineitem = index_of("lineitem");
  int orders = index_of("orders");
  int okey_in_li = db[lineitem].table.schema().Find("l_orderkey");
  int okey_in_o = db[orders].table.schema().Find("o_orderkey");

  bool li_orders = false;
  for (const ForeignKeyCandidate& fk : fks) {
    if (fk.referencing_table == lineitem && fk.referenced_table == orders &&
        fk.foreign_key_columns == std::vector<int>{okey_in_li} &&
        fk.referenced_key == AttributeSet::Single(okey_in_o)) {
      li_orders = true;
      EXPECT_DOUBLE_EQ(fk.coverage, 1.0);
    }
  }
  EXPECT_TRUE(li_orders) << "lineitem.l_orderkey -> orders.o_orderkey missing";
}

TEST(DiscoverForeignKeys, CompositeForeignKeyPairing) {
  // Referencing table stores (a, b) that reference a composite key (x, y)
  // of the referenced table — the discovered candidate must pair the
  // columns in the right order.
  TableBuilder kb(Schema(std::vector<std::string>{"x", "y", "payload"}));
  for (int64_t x = 0; x < 10; ++x) {
    for (int64_t y = 0; y < 10; ++y) {
      kb.AddRow({Value(x), Value(y), Value(x * 100 + y)});
    }
  }
  Table keyed = kb.Build();
  TableBuilder fb(Schema(std::vector<std::string>{"b_ref", "a_ref"}));
  for (int64_t i = 0; i < 80; ++i) {
    // Columns swapped relative to the key: a_ref -> x, b_ref -> y. The two
    // columns vary independently so the pair has 80 distinct tuples.
    fb.AddRow({Value(i % 10), Value((i / 10) % 10)});
  }
  Table refs = fb.Build();

  std::vector<ProfiledTable> tables;
  auto keyed_keys = FindKeys(keyed).KeySets();
  tables.push_back({"keyed", &keyed, keyed_keys});
  tables.push_back({"refs", &refs, FindKeys(refs).KeySets()});

  ForeignKeyOptions opts;
  opts.min_distinct_values = 20;
  auto fks = DiscoverForeignKeys(tables, opts);
  bool found = false;
  for (const ForeignKeyCandidate& fk : fks) {
    if (fk.referencing_table == 1 && fk.referenced_table == 0 &&
        fk.referenced_key == (AttributeSet{0, 1}) &&
        fk.foreign_key_columns == std::vector<int>{1, 0}) {
      found = true;  // a_ref pairs with x, b_ref with y
      EXPECT_DOUBLE_EQ(fk.coverage, 1.0);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace gordian
