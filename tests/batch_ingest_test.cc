// Equivalence and memory properties of the columnar ingestion path: a
// table built from RowBatches (any batch size, serial or pooled encode)
// must be byte-identical — same dictionary code assignment, same report —
// to one built row-at-a-time, and the streaming reservoir's encoded rows
// must stay cheaper than the Value rows they replace.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/gordian.h"
#include "core/streaming.h"
#include "table/column_chunk.h"
#include "table/csv.h"
#include "table/table.h"

namespace gordian {
namespace {

// One canonical row set per flavor, as Values; both ingestion paths replay
// it in the same order.
std::vector<std::vector<Value>> MakeRows(const std::string& flavor,
                                         int64_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<std::vector<Value>> rows;
  rows.reserve(n);
  for (int64_t r = 0; r < n; ++r) {
    std::vector<Value> row;
    if (flavor == "null_heavy") {
      row.push_back(rng.Bernoulli(0.4) ? Value::Null()
                                       : Value(static_cast<int64_t>(
                                             rng.Uniform(50))));
      row.push_back(rng.Bernoulli(0.6) ? Value::Null()
                                       : Value("s" + std::to_string(
                                                         rng.Uniform(20))));
      row.push_back(Value(static_cast<int64_t>(r)));
    } else if (flavor == "string_heavy") {
      row.push_back(Value("name-" + std::to_string(rng.Uniform(300))));
      row.push_back(Value("city-" + std::to_string(rng.Uniform(40))));
      row.push_back(Value("tag" + std::to_string(r % 7) + "-" +
                          std::to_string(rng.Uniform(1000))));
    } else {  // mixed
      row.push_back(Value(static_cast<int64_t>(rng.Uniform(100))));
      row.push_back(Value(static_cast<double>(rng.Uniform(64)) * 0.25));
      row.push_back(rng.Bernoulli(0.1)
                        ? Value::Null()
                        : Value("w" + std::to_string(rng.Uniform(90))));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Schema ThreeCols() {
  return Schema(std::vector<std::string>{"a", "b", "c"});
}

Table BuildRowAtATime(const std::vector<std::vector<Value>>& rows) {
  TableBuilder b(ThreeCols());
  for (const auto& row : rows) b.AddRow(row);
  return b.Build();
}

Table BuildBatched(const std::vector<std::vector<Value>>& rows,
                   int batch_rows, ThreadPool* pool) {
  TableBuilder b(ThreeCols());
  RowBatch batch(3);
  for (const auto& row : rows) {
    batch.AppendRow(row);
    if (batch.num_rows() >= batch_rows) {
      b.AddBatch(batch, pool);
      batch.Clear();
    }
  }
  if (batch.num_rows() > 0) b.AddBatch(batch, pool);
  return b.Build();
}

// Byte identity: not just equal values, the very same codes — the
// strongest statement that AddBatch is a drop-in for AddRow.
void ExpectIdenticalEncoding(const Table& want, const Table& got) {
  ASSERT_EQ(want.num_rows(), got.num_rows());
  ASSERT_EQ(want.num_columns(), got.num_columns());
  for (int c = 0; c < want.num_columns(); ++c) {
    EXPECT_EQ(want.column_codes(c), got.column_codes(c)) << "column " << c;
    ASSERT_EQ(want.dictionary(c).size(), got.dictionary(c).size());
    for (uint32_t code = 0; code < want.dictionary(c).size(); ++code) {
      EXPECT_EQ(want.dictionary(c).Decode(code),
                got.dictionary(c).Decode(code))
          << "column " << c << " code " << code;
    }
  }
}

class BatchIngestEquivalence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchIngestEquivalence, BatchSizesAndThreadsMatchRowPath) {
  const std::string flavor = GetParam();
  const auto rows = MakeRows(flavor, 3000, 91);
  const Table want = BuildRowAtATime(rows);

  ThreadPool pool(8);
  for (int batch_rows : {1, 2, 3, 7, 64, 1000, 4096, 5000}) {
    Table serial = BuildBatched(rows, batch_rows, nullptr);
    ExpectIdenticalEncoding(want, serial);
    Table threaded = BuildBatched(rows, batch_rows, &pool);
    ExpectIdenticalEncoding(want, threaded);
  }
}

TEST_P(BatchIngestEquivalence, ReportsIdentical) {
  const std::string flavor = GetParam();
  const auto rows = MakeRows(flavor, 1200, 92);
  Table row_table = BuildRowAtATime(rows);
  KeyDiscoveryResult row_result = FindKeys(row_table);
  ThreadPool pool(8);
  Table batch_table = BuildBatched(rows, 256, &pool);
  KeyDiscoveryResult batch_result = FindKeys(batch_table);
  ASSERT_EQ(row_result.keys.size(), batch_result.keys.size());
  for (size_t i = 0; i < row_result.keys.size(); ++i) {
    EXPECT_EQ(row_result.keys[i].attrs, batch_result.keys[i].attrs);
    EXPECT_DOUBLE_EQ(row_result.keys[i].estimated_strength,
                     batch_result.keys[i].estimated_strength);
  }
  EXPECT_EQ(row_result.non_keys, batch_result.non_keys);
  EXPECT_EQ(FormatResult(row_table, row_result),
            FormatResult(batch_table, batch_result));
}

INSTANTIATE_TEST_SUITE_P(Flavors, BatchIngestEquivalence,
                         ::testing::Values("null_heavy", "string_heavy",
                                           "mixed"));

TEST(BatchIngest, StreamingAddBatchMatchesAddRow) {
  const auto rows = MakeRows("mixed", 2500, 93);
  GordianOptions o;
  o.sample_rows = 300;
  o.sample_seed = 17;

  StreamingProfiler by_row(ThreeCols(), o);
  for (const auto& row : rows) by_row.AddRow(row);
  KeyDiscoveryResult want = by_row.Finish();

  StreamingProfiler by_batch(ThreeCols(), o);
  RowBatch batch(3);
  for (const auto& row : rows) {
    batch.AppendRow(row);
    if (batch.full()) {
      by_batch.AddBatch(batch);
      batch.Clear();
    }
  }
  if (batch.num_rows() > 0) by_batch.AddBatch(batch);
  KeyDiscoveryResult got = by_batch.Finish();

  // Identical PRNG draw sequence -> identical reservoir -> identical report.
  ASSERT_EQ(want.keys.size(), got.keys.size());
  for (size_t i = 0; i < want.keys.size(); ++i) {
    EXPECT_EQ(want.keys[i].attrs, got.keys[i].attrs);
    EXPECT_DOUBLE_EQ(want.keys[i].estimated_strength,
                     got.keys[i].estimated_strength);
  }
  EXPECT_EQ(want.non_keys, got.non_keys);
  EXPECT_EQ(want.sampled, got.sampled);
}

TEST(BatchIngest, ReservoirMemoryStaysBoundedOnStringStream) {
  // A long string-heavy stream with bounded cardinality: the reservoir
  // holds k encoded rows (4 bytes per cell) against shared dictionaries,
  // so its footprint must stay far below the raw string rows it has seen,
  // and must not grow between half-stream and full-stream checkpoints by
  // more than the dictionaries can account for.
  const int64_t kRows = 20000;
  const int64_t kReservoir = 500;
  GordianOptions o;
  o.sample_rows = kReservoir;
  o.sample_seed = 3;
  StreamingProfiler profiler(ThreeCols(), o);

  Random rng(94);
  int64_t raw_bytes = 0;
  int64_t mid_bytes = 0;
  for (int64_t r = 0; r < kRows; ++r) {
    std::vector<Value> row = {
        Value("alpha-" + std::to_string(rng.Uniform(400))),
        Value("beta-" + std::to_string(rng.Uniform(400))),
        Value("gamma-" + std::to_string(rng.Uniform(400)))};
    for (const Value& v : row) raw_bytes += v.str().size();
    profiler.AddRow(row);
    if (r == kRows / 2) mid_bytes = profiler.ApproxBytes();
  }
  const int64_t end_bytes = profiler.ApproxBytes();

  // Bounded dictionaries (~400 distinct strings per column) + k code rows:
  // comfortably under the raw stream, with slack for hash slots/refcounts.
  EXPECT_LT(end_bytes, raw_bytes / 4);
  // Steady state: dictionary churn is compacted away, so the second half
  // of the stream must not inflate the footprint.
  EXPECT_LE(end_bytes, mid_bytes * 2);

  KeyDiscoveryResult r = profiler.Finish();
  EXPECT_TRUE(r.sampled);
  EXPECT_EQ(r.stats.rows_processed, kReservoir);
}

TEST(BatchIngest, ReservoirCompactionDropsDeadDictionaryEntries) {
  // A 1M-row stream of unique strings through a 10k-slot reservoir: once
  // the reservoir is full, each replacement kills one old code. Without
  // compaction the dictionary would hold all rows_seen strings (tens of
  // megabytes); with it, the footprint tracks the ~10k live entries.
  const int64_t kRows = 1000000;
  GordianOptions o;
  o.sample_rows = 10000;
  o.sample_seed = 8;
  Schema schema(std::vector<std::string>{"s"});
  StreamingProfiler profiler(schema, o);
  int64_t raw_bytes = 0;
  std::string cell;
  for (int64_t r = 0; r < kRows; ++r) {
    cell = "unique-entity-" + std::to_string(r);
    raw_bytes += static_cast<int64_t>(cell.size());
    profiler.AddRow({Value(cell)});
  }
  // ~20 MB of raw unique strings; the encoded reservoir stays within a
  // small multiple of the 10k live rows.
  EXPECT_GT(raw_bytes, 19 * 1000 * 1000);
  EXPECT_LT(profiler.ApproxBytes(), 4 * 1024 * 1024);
  KeyDiscoveryResult r = profiler.Finish();
  ASSERT_EQ(r.keys.size(), 1u);  // the unique column is a key of any sample
}

TEST(BatchIngest, CsvEncodeThreadsMatchSerial) {
  const auto rows = MakeRows("string_heavy", 2000, 95);
  Table t = BuildRowAtATime(rows);
  std::string path = ::testing::TempDir() + "gordian_batch_ingest.csv";
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, path).ok());

  Table serial;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &serial).ok());
  CsvOptions threaded_opts;
  threaded_opts.encode_threads = 8;
  Table threaded;
  ASSERT_TRUE(ReadCsv(path, threaded_opts, &threaded).ok());
  ExpectIdenticalEncoding(serial, threaded);
}

TEST(BatchIngest, ProfileCsvFileReportsIngestStats) {
  const auto rows = MakeRows("mixed", 1500, 96);
  Table t = BuildRowAtATime(rows);
  std::string path = ::testing::TempDir() + "gordian_ingest_stats.csv";
  ASSERT_TRUE(WriteCsv(t, CsvOptions{}, path).ok());

  KeyDiscoveryResult result;
  IngestStats stats;
  ASSERT_TRUE(ProfileCsvFile(path, CsvOptions{}, GordianOptions{}, &result,
                             &stats)
                  .ok());
  EXPECT_EQ(stats.rows, 1500);
  EXPECT_EQ(stats.batches, 1);  // 1500 rows fit one default batch
  EXPECT_GT(stats.bytes, 0);
}

}  // namespace
}  // namespace gordian
