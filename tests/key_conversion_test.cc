// Unit and property tests for the non-key -> key conversion (Algorithm 6),
// checked against a direct enumeration oracle.

#include "core/key_conversion.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// Oracle: a set K is a key iff it is not covered by (a subset of) any
// non-key. Enumerate all 2^d subsets, keep the keys, minimize.
std::vector<AttributeSet> OracleKeys(const std::vector<AttributeSet>& non_keys,
                                     int d) {
  std::vector<AttributeSet> keys;
  for (uint64_t mask = 1; mask < (uint64_t{1} << d); ++mask) {
    AttributeSet k;
    for (int i = 0; i < d; ++i) {
      if (mask & (uint64_t{1} << i)) k.Set(i);
    }
    bool covered = false;
    for (const AttributeSet& nk : non_keys) {
      if (nk.Covers(k)) {
        covered = true;
        break;
      }
    }
    if (!covered) keys.push_back(k);
  }
  return MinimizeSets(std::move(keys));
}

TEST(MinimizeSets, RemovesDuplicatesAndSupersets) {
  std::vector<AttributeSet> in = {
      AttributeSet{0, 1}, AttributeSet{0}, AttributeSet{0, 1, 2},
      AttributeSet{0}, AttributeSet{2}};
  auto out = MinimizeSets(in);
  EXPECT_EQ(Sorted(out), Sorted({AttributeSet{0}, AttributeSet{2}}));
}

TEST(MinimizeSets, KeepsIncomparableSets) {
  std::vector<AttributeSet> in = {AttributeSet{0, 1}, AttributeSet{1, 2},
                                  AttributeSet{0, 2}};
  EXPECT_EQ(MinimizeSets(in).size(), 3u);
}

TEST(NonKeysToKeys, PaperExample) {
  // Non-keys <First,Last> = {0,1} and <Phone> = {2} over 4 attributes give
  // keys <EmpNo> = {3}, <First,Phone> = {0,2}, <Last,Phone> = {1,2}.
  std::vector<AttributeSet> non_keys = {AttributeSet{0, 1}, AttributeSet{2}};
  auto keys = NonKeysToKeys(non_keys, 4);
  EXPECT_EQ(Sorted(keys), Sorted({AttributeSet{3}, AttributeSet{0, 2},
                                  AttributeSet{1, 2}}));
}

TEST(NonKeysToKeys, NoNonKeysMeansAllSingletons) {
  auto keys = NonKeysToKeys({}, 3);
  EXPECT_EQ(Sorted(keys),
            Sorted({AttributeSet{0}, AttributeSet{1}, AttributeSet{2}}));
}

TEST(NonKeysToKeys, FullNonKeyMeansNoKeys) {
  EXPECT_TRUE(NonKeysToKeys({AttributeSet::FirstN(3)}, 3).empty());
}

TEST(NonKeysToKeys, SingleNonKeyYieldsItsComplementSingletons) {
  auto keys = NonKeysToKeys({AttributeSet{1}}, 3);
  EXPECT_EQ(Sorted(keys), Sorted({AttributeSet{0}, AttributeSet{2}}));
}

TEST(NonKeysToKeys, AllSingletonNonKeysForceTheFullCompositeKeyChain) {
  // Non-keys {0},{1},{2} over d=3: the only sets hitting every complement
  // are pairs; minimal keys = all pairs? No: a key must not be covered by
  // any non-key — any 2-subset qualifies. Oracle confirms.
  std::vector<AttributeSet> nks = {AttributeSet{0}, AttributeSet{1},
                                   AttributeSet{2}};
  EXPECT_EQ(Sorted(NonKeysToKeys(nks, 3)), Sorted(OracleKeys(nks, 3)));
}

TEST(NonKeysToKeys, ResultIsAlwaysAnAntichain) {
  std::vector<AttributeSet> nks = {AttributeSet{0, 1, 2}, AttributeSet{2, 3},
                                   AttributeSet{4}};
  auto keys = NonKeysToKeys(nks, 6);
  for (size_t i = 0; i < keys.size(); ++i) {
    for (size_t j = 0; j < keys.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(keys[i].Covers(keys[j]));
      }
    }
  }
}

// Property sweep: random antichains of non-keys vs. the enumeration oracle.
struct ConvCase {
  int d;
  int num_non_keys;
  uint64_t seed;
};

class ConversionProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConversionProperty, MatchesEnumerationOracle) {
  const ConvCase& c = GetParam();
  Random rng(c.seed);
  // Draw random subsets, keep them as a (possibly redundant) non-key list —
  // the conversion must cope with redundancy-free input, so minimize first
  // (GORDIAN's NonKeySet guarantees an antichain).
  std::vector<AttributeSet> nks;
  for (int i = 0; i < c.num_non_keys; ++i) {
    AttributeSet s;
    for (int a = 0; a < c.d; ++a) {
      if (rng.Bernoulli(0.4)) s.Set(a);
    }
    if (!s.Empty()) nks.push_back(s);
  }
  // Keep maximal sets (antichain of non-keys = no member covered by another).
  std::vector<AttributeSet> antichain;
  for (const AttributeSet& s : nks) {
    bool covered = false;
    for (const AttributeSet& o : nks) {
      if (o != s && o.Covers(s)) {
        covered = true;
        break;
      }
    }
    if (!covered) antichain.push_back(s);
  }
  std::sort(antichain.begin(), antichain.end());
  antichain.erase(std::unique(antichain.begin(), antichain.end()),
                  antichain.end());

  EXPECT_EQ(Sorted(NonKeysToKeys(antichain, c.d)),
            Sorted(OracleKeys(antichain, c.d)))
      << "d=" << c.d << " seed=" << c.seed;
}

std::vector<ConvCase> MakeConvCases() {
  std::vector<ConvCase> cases;
  uint64_t seed = 100;
  for (int d : {2, 3, 4, 5, 6, 8, 10}) {
    for (int n : {1, 2, 4, 8}) {
      for (int rep = 0; rep < 3; ++rep) {
        cases.push_back({d, n, seed++});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomAntichains, ConversionProperty,
                         ::testing::ValuesIn(MakeConvCases()));

}  // namespace
}  // namespace gordian
