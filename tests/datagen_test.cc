// Tests for the dataset generators: planted keys, correlations, the index
// permutation, and the three paper-dataset stand-ins.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/gordian.h"
#include "datagen/baseball_like.h"
#include "datagen/datasets.h"
#include "datagen/opic_like.h"
#include "datagen/synthetic.h"
#include "datagen/tpch_lite.h"
#include "datagen/words.h"

namespace gordian {
namespace {

TEST(IndexPermutation, IsABijectionOnSmallDomains) {
  for (uint64_t n : {1ull, 2ull, 7ull, 64ull, 1000ull}) {
    IndexPermutation p(n, 42);
    std::set<uint64_t> image;
    for (uint64_t i = 0; i < n; ++i) {
      uint64_t v = p.Map(i);
      EXPECT_LT(v, n);
      image.insert(v);
    }
    EXPECT_EQ(image.size(), n);
  }
}

TEST(IndexPermutation, DifferentSeedsGiveDifferentPermutations) {
  IndexPermutation a(1000, 1), b(1000, 2);
  int diff = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (a.Map(i) != b.Map(i)) ++diff;
  }
  EXPECT_GT(diff, 900);
}

TEST(Synthetic, PlantedKeyIsExactlyUnique) {
  SyntheticSpec spec = UniformSpec(5, 2000, 8, 0.5, 7);
  spec.columns[1].cardinality = 64;
  spec.columns[3].cardinality = 64;
  spec.planted_keys.push_back({1, 3});
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  EXPECT_EQ(t.num_rows(), 2000);
  EXPECT_TRUE(t.IsUnique(AttributeSet{1, 3}));
}

TEST(Synthetic, CardinalityIsRespected) {
  SyntheticSpec spec = UniformSpec(3, 5000, 10, 0.0, 8);
  spec.ensure_unique_rows = false;
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  for (int c = 0; c < 3; ++c) {
    EXPECT_LE(t.ColumnCardinality(c), 10);
    EXPECT_GE(t.ColumnCardinality(c), 8);  // 5000 draws cover 10 values
  }
}

TEST(Synthetic, ExactFunctionalDependencyHolds) {
  SyntheticSpec spec = UniformSpec(3, 2000, 50, 0.3, 9);
  spec.columns[1].correlated_with = 0;
  spec.columns[1].correlation_noise = 0.0;
  spec.ensure_unique_rows = false;
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  // col0 -> col1: equal col0 codes imply equal col1 codes.
  EXPECT_EQ(t.DistinctCount(AttributeSet{0}), t.DistinctCount(AttributeSet{0, 1}));
}

TEST(Synthetic, NoisyDependencyIsImperfect) {
  SyntheticSpec spec = UniformSpec(3, 4000, 50, 0.3, 10);
  spec.columns[1].correlated_with = 0;
  spec.columns[1].correlation_noise = 0.3;
  spec.ensure_unique_rows = false;
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  EXPECT_GT(t.DistinctCount(AttributeSet{0, 1}), t.DistinctCount(AttributeSet{0}));
}

TEST(Synthetic, UniqueRowsRequested) {
  SyntheticSpec spec = UniformSpec(4, 3000, 16, 0.8, 11);
  spec.ensure_unique_rows = true;
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  EXPECT_EQ(t.DistinctCount(AttributeSet::FirstN(4)), 3000);
}

TEST(Synthetic, RejectsInfeasiblePlantedKey) {
  SyntheticSpec spec = UniformSpec(3, 1000, 4, 0.0, 12);
  spec.planted_keys.push_back({0, 1});  // 16 < 1000
  Table t;
  EXPECT_FALSE(GenerateSynthetic(spec, &t).ok());
}

TEST(Synthetic, RejectsOverlappingPlantedKeysAndBadColumns) {
  SyntheticSpec spec = UniformSpec(4, 10, 100, 0.0, 13);
  spec.planted_keys.push_back({0, 1});
  spec.planted_keys.push_back({1, 2});
  Table t;
  EXPECT_FALSE(GenerateSynthetic(spec, &t).ok());

  SyntheticSpec spec2 = UniformSpec(4, 10, 100, 0.0, 13);
  spec2.planted_keys.push_back({7});
  EXPECT_FALSE(GenerateSynthetic(spec2, &t).ok());
}

TEST(Synthetic, RejectsCorrelationWithLaterColumn) {
  SyntheticSpec spec = UniformSpec(3, 10, 100, 0.0, 14);
  spec.columns[0].correlated_with = 2;
  Table t;
  EXPECT_FALSE(GenerateSynthetic(spec, &t).ok());
}

TEST(Synthetic, DeterministicPerSeed) {
  SyntheticSpec spec = UniformSpec(4, 200, 20, 0.5, 15);
  Table a, b;
  ASSERT_TRUE(GenerateSynthetic(spec, &a).ok());
  ASSERT_TRUE(GenerateSynthetic(spec, &b).ok());
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    for (int c = 0; c < a.num_columns(); ++c) {
      EXPECT_EQ(a.code(r, c), b.code(r, c));
    }
  }
}

TEST(OpicLike, HasPlantedPrefixKeyAndRequestedShape) {
  Table t = GenerateOpicLike(3000, 24, 77);
  EXPECT_EQ(t.num_rows(), 3000);
  EXPECT_EQ(t.num_columns(), 24);
  // (model_no, config_no) at positions 0 and 4 is unique.
  EXPECT_TRUE(t.IsUnique(AttributeSet{0, 4}));
  // The hierarchy columns are heavily correlated: brand (1) has far fewer
  // (brand, model) combinations than independence would predict.
  EXPECT_LT(t.DistinctCount(AttributeSet{0, 1}),
            t.ColumnCardinality(0) * t.ColumnCardinality(1));
}

TEST(OpicLike, PrefixProjectionsStillHaveKeys) {
  Table t = GenerateOpicLike(2000, 40, 78);
  for (int k : {5, 10, 20, 40}) {
    Table p = t.ProjectColumns(k);
    KeyDiscoveryResult r = FindKeys(p);
    EXPECT_FALSE(r.no_keys) << "prefix " << k;
    EXPECT_FALSE(r.keys.empty()) << "prefix " << k;
  }
}

TEST(TpchLite, SchemaShapeMatchesTable1) {
  auto db = GenerateTpchLite(0.002, 5);
  ASSERT_EQ(db.size(), 8u);
  int max_attrs = 0;
  double avg = 0;
  for (const NamedTable& t : db) {
    max_attrs = std::max(max_attrs, t.table.num_columns());
    avg += t.table.num_columns();
  }
  avg /= db.size();
  EXPECT_EQ(max_attrs, 16);  // lineitem
  EXPECT_NEAR(avg, 9.0, 2.0);
}

TEST(TpchLite, StandardKeysHold) {
  auto db = GenerateTpchLite(0.002, 6);
  auto find = [&](const std::string& name) -> const Table& {
    for (const NamedTable& t : db) {
      if (t.name == name) return t.table;
    }
    ADD_FAILURE() << "missing table " << name;
    return db[0].table;
  };
  const Table& partsupp = find("partsupp");
  int pk = partsupp.schema().Find("ps_partkey");
  int sk = partsupp.schema().Find("ps_suppkey");
  EXPECT_TRUE(partsupp.IsUnique({AttributeSet{pk, sk}}));
  EXPECT_FALSE(partsupp.IsUnique(AttributeSet{pk}));

  const Table& lineitem = find("lineitem");
  int ok = lineitem.schema().Find("l_orderkey");
  int ln = lineitem.schema().Find("l_linenumber");
  EXPECT_TRUE(lineitem.IsUnique({AttributeSet{ok, ln}}));
  EXPECT_FALSE(lineitem.IsUnique(AttributeSet{ok}));

  const Table& orders = find("orders");
  EXPECT_TRUE(orders.IsUnique(AttributeSet{orders.schema().Find("o_orderkey")}));
}

TEST(TpchLite, FactTableShapeAndKeys) {
  Table fact = GenerateTpchFact(20000, 7);
  EXPECT_EQ(fact.num_columns(), 17);
  EXPECT_EQ(fact.num_rows(), 20000);
  int ok = fact.schema().Find("f_orderkey");
  int ln = fact.schema().Find("f_linenumber");
  int id = fact.schema().Find("f_rowid");
  EXPECT_TRUE(fact.IsUnique({AttributeSet{ok, ln}}));
  EXPECT_TRUE(fact.IsUnique(AttributeSet{id}));
  EXPECT_FALSE(fact.IsUnique(AttributeSet{ok}));
}

TEST(BaseballLike, TwelveTablesWithCompositeKeyTexture) {
  auto db = GenerateBaseballLike(0.05, 8);
  EXPECT_EQ(db.size(), 12u);
  double avg = 0;
  for (const NamedTable& t : db) {
    EXPECT_GT(t.table.num_rows(), 0) << t.name;
    avg += t.table.num_columns();
  }
  avg /= db.size();
  EXPECT_NEAR(avg, 11.0, 6.0);

  // awards: (award, season) is a key by construction.
  for (const NamedTable& t : db) {
    if (t.name == "awards") {
      EXPECT_TRUE(t.table.IsUnique((AttributeSet{0, 1})));
    }
    if (t.name == "players") {
      EXPECT_TRUE(t.table.IsUnique(AttributeSet{0}));
    }
  }
}

TEST(Datasets, AllThreeBuildWithStats) {
  auto all = MakeAllDatasets(0.02, 9);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "TPC-H");
  EXPECT_EQ(all[1].name, "OPICM");
  EXPECT_EQ(all[2].name, "BASEBALL");
  for (const Dataset& d : all) {
    EXPECT_GT(d.num_tables(), 0);
    EXPECT_GT(d.TotalTuples(), 0);
    EXPECT_GT(d.AverageAttributes(), 0);
    EXPECT_GE(d.MaxAttributes(), d.AverageAttributes());
  }
  EXPECT_EQ(all[1].MaxAttributes(), 66);
}

TEST(Words, DeterministicAndShaped) {
  EXPECT_EQ(SurnameFor(5), SurnameFor(5));
  EXPECT_NE(SurnameFor(5), SurnameFor(6));
  EXPECT_FALSE(GivenNameFor(3).empty());
  EXPECT_NE(CityFor(1).find(" City"), std::string::npos);
  EXPECT_EQ(DateFor(0), 19920101);
  EXPECT_EQ(DateFor(360), 19930101);
  EXPECT_EQ(DateFor(30), 19920201);
}

}  // namespace
}  // namespace gordian
