// Robustness fuzzing for the text ingestion paths: random and mutated
// CSV/XML inputs must never crash the parsers; whatever loads must be
// internally consistent.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/random.h"
#include "table/csv.h"
#include "table/xml_lite.h"

namespace gordian {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "gordian_fuzz_" + name;
  std::ofstream os(path, std::ios::binary);
  os << content;
  return path;
}

void ExpectConsistent(const Table& t) {
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      (void)t.value(r, c);
    }
    EXPECT_LE(t.ColumnCardinality(c), t.dictionary(c).size());
  }
}

TEST(ParserFuzz, RandomBytesNeverCrashCsv) {
  Random rng(501);
  const char alphabet[] = "abc,\"\n\r123 .-=;\t";
  for (int trial = 0; trial < 120; ++trial) {
    std::string content;
    size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      content += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    std::string path = WriteTemp("csv", content);
    Table t;
    Status s = ReadCsv(path, CsvOptions{}, &t);
    if (s.ok()) ExpectConsistent(t);
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedValidCsvNeverCrashes) {
  std::string base = "id,name,score\n";
  for (int i = 0; i < 40; ++i) {
    base += std::to_string(i) + ",\"n" + std::to_string(i % 7) + "\"," +
            std::to_string(i * 0.5) + "\n";
  }
  Random rng(502);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next() & 0x7F);
    }
    std::string path = WriteTemp("csvmut", mutated);
    Table t;
    Status s = ReadCsv(path, CsvOptions{}, &t);
    if (s.ok()) ExpectConsistent(t);
  }
  SUCCEED();
}

// Oracle check for the quote-aware batch scanner: generate random field
// matrices (fields may contain delimiters, quotes, CR and LF), render them
// with every field quoted, and require ReadCsv to reproduce the matrix
// exactly. Quoting every field sidesteps the blank-record rule (an empty
// single field renders as "" which is not a blank line).
TEST(ParserFuzz, QuotedRandomMatricesRoundTripExactly) {
  Random rng(505);
  const char alphabet[] = "ab,\"\n\r 1.;";
  for (int trial = 0; trial < 150; ++trial) {
    const int cols = 1 + static_cast<int>(rng.Uniform(5));
    const int rows = static_cast<int>(rng.Uniform(30));
    std::vector<std::vector<std::string>> matrix(rows);
    std::string content;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        std::string field;
        size_t len = rng.Uniform(12);
        for (size_t i = 0; i < len; ++i) {
          field += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
        }
        if (c > 0) content += ',';
        content += '"';
        for (char ch : field) {
          content += ch;
          if (ch == '"') content += '"';  // RFC 4180 escape
        }
        content += '"';
        matrix[r].push_back(std::move(field));
      }
      content += '\n';
    }
    std::string path = WriteTemp("csvquote", content);
    CsvOptions opts;
    opts.has_header = false;
    opts.infer_types = false;  // exact string identity, no numeric folding
    Table t;
    Status s = ReadCsv(path, opts, &t);
    if (rows == 0) {
      EXPECT_FALSE(s.ok());  // empty file
      continue;
    }
    ASSERT_TRUE(s.ok()) << s.ToString() << "\ninput:\n" << content;
    ASSERT_EQ(t.num_rows(), rows);
    ASSERT_EQ(t.num_columns(), cols);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        EXPECT_EQ(t.value(r, c), Value(matrix[r][c]))
            << "row " << r << " col " << c << "\ninput:\n" << content;
      }
    }
  }
}

// Unbalanced quotes and newlines in the same soup: the scanner must either
// load a consistent table or fail cleanly, never crash or hang.
TEST(ParserFuzz, RandomQuoteNewlineSoupNeverCrashes) {
  Random rng(506);
  const char alphabet[] = "\"\n\r,x";
  for (int trial = 0; trial < 200; ++trial) {
    std::string content;
    size_t len = rng.Uniform(200);
    for (size_t i = 0; i < len; ++i) {
      content += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    std::string path = WriteTemp("csvsoup", content);
    Table t;
    Status s = ReadCsv(path, CsvOptions{}, &t);
    if (s.ok()) ExpectConsistent(t);
  }
  SUCCEED();
}

TEST(ParserFuzz, RandomTagSoupNeverCrashesXml) {
  Random rng(503);
  const char* pieces[] = {"<",    ">",   "</",  "/>",  "a",    "bb",
                          "=",    "'x'", "\"y\"", " ",   "&lt;", "&bogus;",
                          "<!--", "-->", "<?",  "?>",  "7",    "text"};
  for (int trial = 0; trial < 150; ++trial) {
    std::string content;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      content += pieces[rng.Uniform(sizeof(pieces) / sizeof(pieces[0]))];
    }
    std::vector<Record> records;
    Status s = ParseXmlCollection(content, &records);
    if (s.ok()) {
      for (const Record& r : records) {
        for (const auto& [path, v] : r) {
          EXPECT_FALSE(path.empty());
          (void)v;
        }
      }
    }
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedValidXmlNeverCrashes) {
  std::string base = "<db>";
  for (int i = 0; i < 25; ++i) {
    base += "<p id='" + std::to_string(i) + "'><a>" + std::to_string(i % 5) +
            "</a><b>t" + std::to_string(i % 3) + "</b></p>";
  }
  base += "</db>";
  Random rng(504);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    }
    std::vector<Record> records;
    Status s = ParseXmlCollection(mutated, &records);
    (void)s;  // either outcome is fine; no crash is the property
  }
  SUCCEED();
}

TEST(ParserFuzz, DeeplyNestedXmlDoesNotOverflow) {
  // 2000 levels of nesting exercises the recursive parser's stack usage;
  // each frame is small, so this depth must be safe.
  std::string content = "<db><e>";
  for (int i = 0; i < 2000; ++i) content += "<n" + std::to_string(i) + ">";
  content += "1";
  for (int i = 1999; i >= 0; --i) content += "</n" + std::to_string(i) + ">";
  content += "</e></db>";
  std::vector<Record> records;
  Status s = ParseXmlCollection(content, &records);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size(), 1u);
}

}  // namespace
}  // namespace gordian
