// Robustness fuzzing for the text ingestion paths: random and mutated
// CSV/XML inputs must never crash the parsers; whatever loads must be
// internally consistent.

#include <gtest/gtest.h>

#include <fstream>
#include <string>

#include "common/random.h"
#include "table/csv.h"
#include "table/xml_lite.h"

namespace gordian {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  std::string path = ::testing::TempDir() + "gordian_fuzz_" + name;
  std::ofstream os(path, std::ios::binary);
  os << content;
  return path;
}

void ExpectConsistent(const Table& t) {
  for (int c = 0; c < t.num_columns(); ++c) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      (void)t.value(r, c);
    }
    EXPECT_LE(t.ColumnCardinality(c), t.dictionary(c).size());
  }
}

TEST(ParserFuzz, RandomBytesNeverCrashCsv) {
  Random rng(501);
  const char alphabet[] = "abc,\"\n\r123 .-=;\t";
  for (int trial = 0; trial < 120; ++trial) {
    std::string content;
    size_t len = rng.Uniform(300);
    for (size_t i = 0; i < len; ++i) {
      content += alphabet[rng.Uniform(sizeof(alphabet) - 1)];
    }
    std::string path = WriteTemp("csv", content);
    Table t;
    Status s = ReadCsv(path, CsvOptions{}, &t);
    if (s.ok()) ExpectConsistent(t);
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedValidCsvNeverCrashes) {
  std::string base = "id,name,score\n";
  for (int i = 0; i < 40; ++i) {
    base += std::to_string(i) + ",\"n" + std::to_string(i % 7) + "\"," +
            std::to_string(i * 0.5) + "\n";
  }
  Random rng(502);
  for (int trial = 0; trial < 120; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(5));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(rng.Next() & 0x7F);
    }
    std::string path = WriteTemp("csvmut", mutated);
    Table t;
    Status s = ReadCsv(path, CsvOptions{}, &t);
    if (s.ok()) ExpectConsistent(t);
  }
  SUCCEED();
}

TEST(ParserFuzz, RandomTagSoupNeverCrashesXml) {
  Random rng(503);
  const char* pieces[] = {"<",    ">",   "</",  "/>",  "a",    "bb",
                          "=",    "'x'", "\"y\"", " ",   "&lt;", "&bogus;",
                          "<!--", "-->", "<?",  "?>",  "7",    "text"};
  for (int trial = 0; trial < 150; ++trial) {
    std::string content;
    size_t len = rng.Uniform(60);
    for (size_t i = 0; i < len; ++i) {
      content += pieces[rng.Uniform(sizeof(pieces) / sizeof(pieces[0]))];
    }
    std::vector<Record> records;
    Status s = ParseXmlCollection(content, &records);
    if (s.ok()) {
      for (const Record& r : records) {
        for (const auto& [path, v] : r) {
          EXPECT_FALSE(path.empty());
          (void)v;
        }
      }
    }
  }
  SUCCEED();
}

TEST(ParserFuzz, MutatedValidXmlNeverCrashes) {
  std::string base = "<db>";
  for (int i = 0; i < 25; ++i) {
    base += "<p id='" + std::to_string(i) + "'><a>" + std::to_string(i % 5) +
            "</a><b>t" + std::to_string(i % 3) + "</b></p>";
  }
  base += "</db>";
  Random rng(504);
  for (int trial = 0; trial < 150; ++trial) {
    std::string mutated = base;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = rng.Uniform(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    }
    std::vector<Record> records;
    Status s = ParseXmlCollection(mutated, &records);
    (void)s;  // either outcome is fine; no crash is the property
  }
  SUCCEED();
}

TEST(ParserFuzz, DeeplyNestedXmlDoesNotOverflow) {
  // 2000 levels of nesting exercises the recursive parser's stack usage;
  // each frame is small, so this depth must be safe.
  std::string content = "<db><e>";
  for (int i = 0; i < 2000; ++i) content += "<n" + std::to_string(i) + ">";
  content += "1";
  for (int i = 1999; i >= 0; --i) content += "</n" + std::to_string(i) + ">";
  content += "</e></db>";
  std::vector<Record> records;
  Status s = ParseXmlCollection(content, &records);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].size(), 1u);
}

}  // namespace
}  // namespace gordian
