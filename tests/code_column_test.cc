// Unit tests for the CodeColumn storage boundary: resident and spilled
// representations, the GRDL writer/reader round trip, the exhaustive
// single-byte corruption matrix, and the fault-injection (torn write /
// crashed save / short read) recovery matrix.

#include "table/code_column.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "common/status.h"

namespace gordian {
namespace {

std::string TestDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "gordian_codecol_" + name;
  EXPECT_TRUE(DefaultFileSystem()->CreateDir(dir).ok());
  return dir;
}

// Deterministic codes with a sprinkling of a designated null code.
std::vector<uint32_t> MakeCodes(int64_t n, uint32_t dict_size,
                                uint32_t null_code, uint64_t seed) {
  std::vector<uint32_t> codes;
  codes.reserve(static_cast<size_t>(n));
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t i = 0; i < n; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    uint32_t c = static_cast<uint32_t>((state >> 33) % dict_size);
    if (null_code != UINT32_MAX && (state >> 13) % 11 == 0) c = null_code;
    codes.push_back(c);
  }
  return codes;
}

// Streams `codes` through a SpillColumnWriter in uneven slices and
// publishes the file at `path`.
Status WriteColumn(FileSystem* fs, const std::string& path,
                   const std::vector<uint32_t>& codes, uint32_t dict_size,
                   uint32_t null_code, int64_t chunk_rows) {
  SpillColumnWriter w(fs, path, chunk_rows);
  int64_t i = 0;
  int64_t step = 1;
  while (i < static_cast<int64_t>(codes.size())) {
    int64_t n = std::min<int64_t>(step, codes.size() - i);
    Status s = w.Append(codes.data() + i, n, null_code);
    if (!s.ok()) return s;
    i += n;
    step = step % 97 + 7;  // uneven slice sizes cross chunk boundaries
  }
  return w.Finish(dict_size, null_code);
}

TEST(CodeColumn, ResidentBasics) {
  CodeColumn col = CodeColumn::Resident({5, 1, 5, 2});
  EXPECT_EQ(col.size(), 4);
  EXPECT_FALSE(col.spilled());
  EXPECT_EQ(col[0], 5u);
  EXPECT_EQ(col[3], 2u);
  EXPECT_EQ(col.CountEqual(5), 2);
  EXPECT_EQ(col.CountEqual(9), 0);
  EXPECT_GT(col.resident_bytes(), 0);
  EXPECT_EQ(col.mapped_bytes(), 0);
  EXPECT_EQ(col.spilled_null_code(), UINT32_MAX);
  EXPECT_EQ(col.path(), "");

  // Copies share the storage.
  CodeColumn copy = col;
  EXPECT_EQ(copy.data(), col.data());
  EXPECT_EQ(copy, col);
}

TEST(CodeColumn, SpillRoundTripAcrossChunkShapes) {
  const std::string dir = TestDir("roundtrip");
  const uint32_t dict_size = 40;
  const uint32_t null_code = 3;
  // Row counts around chunk boundaries: empty, sub-chunk, exact multiples,
  // and partial tails.
  const int64_t chunk_rows = 64;
  for (int64_t rows : {int64_t{0}, int64_t{1}, int64_t{63}, int64_t{64},
                       int64_t{65}, int64_t{640}, int64_t{1000}}) {
    std::vector<uint32_t> codes = MakeCodes(rows, dict_size, null_code, rows);
    const std::string path = dir + "/c" + std::to_string(rows) + ".grdl";
    ASSERT_TRUE(WriteColumn(DefaultFileSystem(), path, codes, dict_size,
                            rows > 0 ? null_code : UINT32_MAX, chunk_rows)
                    .ok());

    CodeColumn col;
    ASSERT_TRUE(
        CodeColumn::OpenSpilled(DefaultFileSystem(), path, dict_size, &col)
            .ok())
        << rows << " rows";
    EXPECT_TRUE(col.spilled());
    EXPECT_EQ(col.path(), path);
    ASSERT_EQ(col.size(), rows);
    for (int64_t i = 0; i < rows; ++i) ASSERT_EQ(col[i], codes[i]) << i;
    EXPECT_EQ(col, CodeColumn::Resident(codes));

    EXPECT_EQ(col.chunk_rows(), chunk_rows);
    EXPECT_EQ(col.num_chunks(), (rows + chunk_rows - 1) / chunk_rows);
    int64_t scanned = 0;
    for (int64_t c = 0; c < col.num_chunks(); ++c) {
      CodeColumn::Span span = col.Scan(c);
      EXPECT_EQ(span.begin, c * chunk_rows);
      for (int64_t i = 0; i < span.count; ++i) {
        ASSERT_EQ(span.data[i], codes[static_cast<size_t>(span.begin + i)]);
      }
      scanned += span.count;
    }
    EXPECT_EQ(scanned, rows);

    EXPECT_EQ(col.resident_bytes(), 0);
    EXPECT_GT(col.mapped_bytes(), 0);
  }
}

TEST(CodeColumn, SpilledNullStatsAreExactAndO1) {
  const std::string dir = TestDir("nullstats");
  const uint32_t dict_size = 17;
  const uint32_t null_code = 4;
  std::vector<uint32_t> codes = MakeCodes(5000, dict_size, null_code, 7);
  int64_t expect_nulls = 0;
  for (uint32_t c : codes) expect_nulls += c == null_code ? 1 : 0;
  ASSERT_GT(expect_nulls, 0);

  const std::string path = dir + "/col.grdl";
  ASSERT_TRUE(WriteColumn(DefaultFileSystem(), path, codes, dict_size,
                          null_code, 256)
                  .ok());
  CodeColumn col;
  ASSERT_TRUE(
      CodeColumn::OpenSpilled(DefaultFileSystem(), path, dict_size, &col)
          .ok());
  EXPECT_EQ(col.spilled_null_code(), null_code);
  // Served from chunk stats, no scan — but must agree with the scan.
  EXPECT_EQ(col.CountEqual(null_code), expect_nulls);
  EXPECT_EQ(CodeColumn::Resident(codes).CountEqual(null_code), expect_nulls);

  // A column never told about a null code records none.
  std::vector<uint32_t> plain = MakeCodes(300, dict_size, UINT32_MAX, 8);
  const std::string plain_path = dir + "/plain.grdl";
  ASSERT_TRUE(WriteColumn(DefaultFileSystem(), plain_path, plain, dict_size,
                          UINT32_MAX, 256)
                  .ok());
  CodeColumn pcol;
  ASSERT_TRUE(CodeColumn::OpenSpilled(DefaultFileSystem(), plain_path,
                                      dict_size, &pcol)
                  .ok());
  EXPECT_EQ(pcol.spilled_null_code(), UINT32_MAX);
}

TEST(CodeColumn, OpenRejectsDictionarySizeMismatch) {
  const std::string dir = TestDir("dictsize");
  std::vector<uint32_t> codes = MakeCodes(200, 30, UINT32_MAX, 3);
  const std::string path = dir + "/col.grdl";
  ASSERT_TRUE(
      WriteColumn(DefaultFileSystem(), path, codes, 30, UINT32_MAX, 64).ok());
  CodeColumn col;
  // Larger-than-stored and smaller-than-stored both refuse: codes must be
  // provably < the dictionary the reader will decode them with.
  EXPECT_FALSE(
      CodeColumn::OpenSpilled(DefaultFileSystem(), path, 31, &col).ok());
  EXPECT_FALSE(
      CodeColumn::OpenSpilled(DefaultFileSystem(), path, 5, &col).ok());
  EXPECT_TRUE(
      CodeColumn::OpenSpilled(DefaultFileSystem(), path, 30, &col).ok());
}

TEST(CodeColumn, OpenRejectsMissingFile) {
  CodeColumn col;
  Status s = CodeColumn::OpenSpilled(
      DefaultFileSystem(), TestDir("missing") + "/nope.grdl", 4, &col);
  EXPECT_FALSE(s.ok());
}

// Every single-byte flip anywhere in a GRDL file must fail OpenSpilled with
// a clean Status: codes are covered by chunk hashes, chunk stats are
// cross-checked against recomputation, and the trailer carries its own
// checksum. No flip may open successfully (and none may crash).
TEST(CodeColumn, SingleByteCorruptionMatrix) {
  const std::string dir = TestDir("corrupt");
  const uint32_t dict_size = 20;
  std::vector<uint32_t> codes = MakeCodes(300, dict_size, 2, 11);
  const std::string path = dir + "/col.grdl";
  ASSERT_TRUE(
      WriteColumn(DefaultFileSystem(), path, codes, dict_size, 2, 64).ok());

  std::string image;
  ASSERT_TRUE(DefaultFileSystem()->ReadFile(path, &image).ok());
  // 300 codes, 5 chunks: 1200 + 80 + 56 bytes.
  ASSERT_EQ(image.size(), 1336u);

  const std::string mutant = dir + "/mutant.grdl";
  for (size_t i = 0; i < image.size(); ++i) {
    std::string bytes = image;
    bytes[i] = static_cast<char>(bytes[i] ^ 0xFF);
    ASSERT_TRUE(DefaultFileSystem()->WriteFile(mutant, bytes).ok());
    CodeColumn col;
    EXPECT_FALSE(
        CodeColumn::OpenSpilled(DefaultFileSystem(), mutant, dict_size, &col)
            .ok())
        << "flip at byte " << i << " was not detected";
  }
}

TEST(CodeColumn, TruncationAndTrailingGarbageAreDetected) {
  const std::string dir = TestDir("truncate");
  const uint32_t dict_size = 20;
  std::vector<uint32_t> codes = MakeCodes(300, dict_size, UINT32_MAX, 13);
  const std::string path = dir + "/col.grdl";
  ASSERT_TRUE(WriteColumn(DefaultFileSystem(), path, codes, dict_size,
                          UINT32_MAX, 64)
                  .ok());
  std::string image;
  ASSERT_TRUE(DefaultFileSystem()->ReadFile(path, &image).ok());

  const std::string mutant = dir + "/mutant.grdl";
  for (size_t keep : {size_t{0}, size_t{1}, size_t{55}, size_t{56},
                      size_t{100}, image.size() - 1}) {
    ASSERT_TRUE(
        DefaultFileSystem()->WriteFile(mutant, image.substr(0, keep)).ok());
    CodeColumn col;
    EXPECT_FALSE(
        CodeColumn::OpenSpilled(DefaultFileSystem(), mutant, dict_size, &col)
            .ok())
        << "truncation to " << keep << " bytes was not detected";
  }
  ASSERT_TRUE(DefaultFileSystem()->WriteFile(mutant, image + "x").ok());
  CodeColumn col;
  EXPECT_FALSE(
      CodeColumn::OpenSpilled(DefaultFileSystem(), mutant, dict_size, &col)
          .ok());
}

TEST(CodeColumn, WriterRemovesStaleTempAndAbandonedTemp) {
  const std::string dir = TestDir("tmpfiles");
  const std::string path = dir + "/col.grdl";
  // A stale temp from a crashed predecessor must not leak into the stream.
  ASSERT_TRUE(DefaultFileSystem()->WriteFile(path + ".tmp", "junk").ok());
  {
    SpillColumnWriter w(DefaultFileSystem(), path, 16);
    std::vector<uint32_t> codes = MakeCodes(100, 10, UINT32_MAX, 1);
    ASSERT_TRUE(w.Append(codes.data(), 100, UINT32_MAX).ok());
    ASSERT_TRUE(w.Finish(10, UINT32_MAX).ok());
    CodeColumn col;
    ASSERT_TRUE(
        CodeColumn::OpenSpilled(DefaultFileSystem(), path, 10, &col).ok());
    EXPECT_EQ(col, CodeColumn::Resident(codes));
  }
  // An abandoned (never finished) writer cleans up its temp file.
  {
    SpillColumnWriter w(DefaultFileSystem(), dir + "/gone.grdl", 16);
    std::vector<uint32_t> codes = MakeCodes(100, 10, UINT32_MAX, 2);
    ASSERT_TRUE(w.Append(codes.data(), 100, UINT32_MAX).ok());
  }
  EXPECT_FALSE(DefaultFileSystem()->FileExists(dir + "/gone.grdl.tmp"));
  EXPECT_FALSE(DefaultFileSystem()->FileExists(dir + "/gone.grdl"));
}

// The crash matrix: fail every step of the append/publish sequence —
// including torn appends that leave a byte prefix — and require Reabsorb
// to hand back every accepted code, in order.
TEST(CodeColumn, FaultMatrixReabsorbRecoversEveryAcceptedCode) {
  struct Case {
    FaultSpec spec;
    const char* what;
  };
  std::vector<Case> cases;
  for (int countdown : {0, 1, 3, 7}) {
    for (int64_t partial : {int64_t{-1}, int64_t{0}, int64_t{5},
                            int64_t{63}}) {
      FaultSpec spec;
      spec.op = FsOp::kAppend;
      spec.countdown = countdown;
      spec.partial_bytes = partial;
      cases.push_back({spec, "append"});
    }
  }
  for (FsOp op : {FsOp::kSyncFile, FsOp::kRename, FsOp::kSyncDir}) {
    FaultSpec spec;
    spec.op = op;
    cases.push_back({spec, "finish"});
  }

  const std::string dir = TestDir("faults");
  const uint32_t dict_size = 25;
  const uint32_t null_code = 6;
  std::vector<uint32_t> codes = MakeCodes(200, dict_size, null_code, 17);

  int case_idx = 0;
  for (const Case& c : cases) {
    FaultInjectionFs ffs(DefaultFileSystem());
    const std::string path =
        dir + "/col" + std::to_string(case_idx++) + ".grdl";
    SpillColumnWriter w(&ffs, path, 16);
    ffs.Arm(c.spec);

    // Feed in slices of 7; stop at the first failure.
    std::vector<uint32_t> accepted;
    Status s;
    for (size_t i = 0; i < codes.size() && s.ok(); i += 7) {
      size_t n = std::min<size_t>(7, codes.size() - i);
      s = w.Append(codes.data() + i, static_cast<int64_t>(n), null_code);
      // Append buffers before it flushes, so even a failing call's codes
      // are accepted (recoverable); only codes never passed in are not.
      accepted.insert(accepted.end(), codes.begin() + i,
                      codes.begin() + i + n);
    }
    if (s.ok()) s = w.Finish(dict_size, null_code);

    if (s.ok()) {
      // Fault never hit the writer's ops (possible only if countdown
      // outlived the sequence); the published file must be valid.
      CodeColumn col;
      ASSERT_TRUE(
          CodeColumn::OpenSpilled(DefaultFileSystem(), path, dict_size, &col)
              .ok());
      EXPECT_EQ(col, CodeColumn::Resident(codes));
      continue;
    }
    ASSERT_TRUE(ffs.fired()) << c.what;
    std::vector<uint32_t> recovered;
    ASSERT_TRUE(w.Reabsorb(&recovered).ok())
        << c.what << " countdown=" << c.spec.countdown
        << " partial=" << c.spec.partial_bytes;
    EXPECT_EQ(recovered, accepted)
        << c.what << " countdown=" << c.spec.countdown
        << " partial=" << c.spec.partial_bytes;
    // Nothing was published under the final name — except after a SyncDir
    // fault, where the rename itself succeeded and the halted fs refuses
    // Reabsorb's cleanup Remove; recovery (asserted above) is what matters.
    if (c.spec.op != FsOp::kSyncDir) {
      EXPECT_FALSE(DefaultFileSystem()->FileExists(path));
    }
  }
}

// A short read at map time (the fault seam's kMap) must surface as the
// injected error, not a crash or a half-open column.
TEST(CodeColumn, MapFaultFailsOpenCleanly) {
  const std::string dir = TestDir("mapfault");
  const std::string path = dir + "/col.grdl";
  std::vector<uint32_t> codes = MakeCodes(100, 10, UINT32_MAX, 19);
  ASSERT_TRUE(WriteColumn(DefaultFileSystem(), path, codes, 10, UINT32_MAX,
                          16)
                  .ok());

  FaultInjectionFs ffs(DefaultFileSystem());
  FaultSpec spec;
  spec.op = FsOp::kMap;
  ffs.Arm(spec);
  CodeColumn col;
  Status s = CodeColumn::OpenSpilled(&ffs, path, 10, &col);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(ffs.fired());
  // The same fs works once the fault is cleared.
  ffs.Reset();
  ASSERT_TRUE(CodeColumn::OpenSpilled(&ffs, path, 10, &col).ok());
  EXPECT_EQ(col, CodeColumn::Resident(codes));
}

}  // namespace
}  // namespace gordian
