// Tests for the statistics and pruning instrumentation: the counters that
// feed Table 2 and Figure 13 must reflect real algorithmic work.

#include <gtest/gtest.h>

#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/opic_like.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

Table CorrelatedTable(uint64_t seed) {
  return GenerateOpicLike(3000, 16, seed);
}

TEST(Stats, PhasesAndBasicCountsArePopulated) {
  Table t = CorrelatedTable(1);
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_EQ(r.stats.rows_processed, 3000);
  EXPECT_EQ(r.stats.num_attributes, 16);
  EXPECT_GT(r.stats.base_tree_nodes, 0);
  EXPECT_GT(r.stats.base_tree_cells, 0);
  EXPECT_GT(r.stats.nodes_visited, 0);
  EXPECT_GT(r.stats.merges_performed, 0);
  EXPECT_GE(r.stats.build_seconds, 0);
  EXPECT_GE(r.stats.find_seconds, 0);
  EXPECT_GE(r.stats.convert_seconds, 0);
  EXPECT_EQ(r.stats.final_non_keys,
            static_cast<int64_t>(r.non_keys.size()));
}

TEST(Stats, PruningCountersFireOnCorrelatedData) {
  Table t = CorrelatedTable(2);
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_GT(r.stats.singleton_traversal_prunes +
                r.stats.singleton_merge_prunes,
            0);
  EXPECT_GT(r.stats.single_entity_prunes, 0);
  EXPECT_GT(r.stats.futility_prunes, 0);
}

TEST(Stats, DisabledPruningsReportZero) {
  Table t = CorrelatedTable(3);
  GordianOptions o;
  o.singleton_pruning = false;
  o.futility_pruning = false;
  o.single_entity_pruning = false;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_EQ(r.stats.singleton_traversal_prunes, 0);
  EXPECT_EQ(r.stats.futility_prunes, 0);
  EXPECT_EQ(r.stats.single_entity_prunes, 0);
  // The single-cell merge skip (Algorithm 4, line 23) is structural and
  // fires regardless of the toggles.
  EXPECT_GT(r.stats.singleton_merge_prunes, 0);
}

TEST(Stats, PruningReducesWork) {
  Table t = CorrelatedTable(4);
  GordianOptions with;
  GordianOptions without;
  without.singleton_pruning = false;
  without.futility_pruning = false;
  without.single_entity_pruning = false;
  KeyDiscoveryResult rw = FindKeys(t, with);
  KeyDiscoveryResult ro = FindKeys(t, without);
  EXPECT_LT(rw.stats.nodes_visited, ro.stats.nodes_visited);
  EXPECT_LT(rw.stats.merges_performed, ro.stats.merges_performed);
}

TEST(Stats, PeakMemoryIsPositiveAndAtLeastTreeFootprint) {
  Table t = CorrelatedTable(5);
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_GT(r.stats.peak_memory_bytes, 0);
  // The peak covers at least the base tree's nodes.
  EXPECT_GE(r.stats.peak_memory_bytes,
            r.stats.base_tree_nodes *
                static_cast<int64_t>(sizeof(void*)));
}

TEST(Stats, BruteForceMemoryGrowsWithArity) {
  Table t = CorrelatedTable(6);
  BruteForceResult single = BruteForceSingle(t);
  BruteForceResult up4 = BruteForceUpTo4(t);
  EXPECT_GT(up4.candidates_checked, single.candidates_checked);
  EXPECT_GE(up4.peak_memory_bytes, single.peak_memory_bytes);
  EXPECT_GT(single.peak_memory_bytes, 0);
}

TEST(Stats, BruteForceTimeBudgetTruncates) {
  // A wide table with an astronomically large candidate space must hit the
  // budget and stop quickly rather than hang.
  Table t = GenerateOpicLike(2000, 40, 7);
  BruteForceOptions o;
  o.max_arity = 0;
  o.prune_superkeys = false;
  o.time_budget_seconds = 0.2;
  BruteForceResult r = BruteForceFindKeys(t, o);
  EXPECT_TRUE(r.truncated);
  EXPECT_LT(r.seconds, 30.0);  // generous: CI machines run tests in parallel
}

TEST(Stats, SampledRunProcessesSampleRows) {
  Table t = CorrelatedTable(8);
  GordianOptions o;
  o.sample_rows = 500;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_EQ(r.stats.rows_processed, 500);
  EXPECT_TRUE(r.sampled);
}

}  // namespace
}  // namespace gordian
