// Tests for the discovery budget guards (GordianOptions::max_non_keys and
// time_budget_seconds): the safety valves for adversarial inputs whose
// non-key antichain is combinatorial.

#include <gtest/gtest.h>

#include "core/gordian.h"
#include "datagen/opic_like.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

Table WorkyTable() {
  // Uncorrelated low-cardinality data: plenty of non-keys to find.
  SyntheticSpec spec = UniformSpec(10, 2000, 32, 0.4, 321);
  spec.columns[0].cardinality = 128;
  spec.columns[1].cardinality = 64;
  spec.planted_keys.push_back({0, 1});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

TEST(Budget, NonKeyLimitTripsAndMarksIncomplete) {
  Table t = WorkyTable();
  KeyDiscoveryResult unbounded = FindKeys(t);
  ASSERT_GT(unbounded.non_keys.size(), 2u);

  GordianOptions o;
  o.max_non_keys = 1;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_TRUE(r.incomplete);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_FALSE(r.non_keys.empty());
  // Everything reported is still a genuine non-key.
  for (const AttributeSet& nk : r.non_keys) {
    EXPECT_FALSE(t.IsUnique(nk));
  }
}

TEST(Budget, TimeBudgetTripsOnLargeInput) {
  Table t = GenerateOpicLike(20000, 30, 99);
  GordianOptions o;
  o.time_budget_seconds = 1e-9;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_TRUE(r.incomplete);
  EXPECT_TRUE(r.keys.empty());
}

TEST(Budget, GenerousBudgetsDoNotChangeResults) {
  Table t = WorkyTable();
  KeyDiscoveryResult base = FindKeys(t);
  GordianOptions o;
  o.max_non_keys = 1 << 20;
  o.time_budget_seconds = 3600;
  KeyDiscoveryResult r = FindKeys(t, o);
  EXPECT_FALSE(r.incomplete);
  EXPECT_EQ(r.KeySets(), base.KeySets());
  EXPECT_EQ(r.non_keys, base.non_keys);
}

TEST(Budget, IncompleteNeverSetOnDefaults) {
  Table t = WorkyTable();
  EXPECT_FALSE(FindKeys(t).incomplete);
}

}  // namespace
}  // namespace gordian
