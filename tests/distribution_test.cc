// Statistical validation of the random substrate: the Zipf sampler's
// frequencies against the analytic distribution (chi-square-style bound),
// uniformity of Random across buckets and of SampleRows over positions —
// the properties the Theorem 1 experiment and the sampling experiments
// depend on.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "table/table.h"

namespace gordian {
namespace {

TEST(Distribution, ZipfFrequenciesTrackTheAnalyticLaw) {
  const uint64_t n = 50;
  for (double theta : {0.5, 1.0}) {
    ZipfGenerator z(n, theta);
    Random rng(61);
    const int samples = 200000;
    std::vector<int> counts(n, 0);
    for (int i = 0; i < samples; ++i) ++counts[z.Sample(rng)];

    double norm = 0;
    for (uint64_t r = 1; r <= n; ++r) norm += std::pow(r, -theta);
    // Chi-square-ish: each cell within 5 sigma of its expectation.
    for (uint64_t r = 0; r < n; ++r) {
      double p = std::pow(r + 1, -theta) / norm;
      double expect = p * samples;
      double sigma = std::sqrt(expect * (1 - p));
      EXPECT_NEAR(counts[r], expect, 5 * sigma + 5)
          << "rank " << r << " theta " << theta;
    }
  }
}

TEST(Distribution, ZipfRankOneDominatesByTheRightFactor) {
  // frequency(rank 1) / frequency(rank 2) should approach 2^theta.
  ZipfGenerator z(1000, 1.0);
  Random rng(62);
  int c1 = 0, c2 = 0;
  for (int i = 0; i < 300000; ++i) {
    uint64_t s = z.Sample(rng);
    if (s == 0) ++c1;
    if (s == 1) ++c2;
  }
  EXPECT_NEAR(static_cast<double>(c1) / c2, 2.0, 0.15);
}

TEST(Distribution, UniformBucketsAreBalanced) {
  Random rng(63);
  const int buckets = 32;
  const int samples = 320000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < samples; ++i) ++counts[rng.Uniform(buckets)];
  double expect = static_cast<double>(samples) / buckets;
  double sigma = std::sqrt(expect);
  for (int b = 0; b < buckets; ++b) {
    EXPECT_NEAR(counts[b], expect, 6 * sigma) << "bucket " << b;
  }
}

TEST(Distribution, SampleRowsIsPositionUnbiased) {
  // Sampling k of n rows many times: each position should be chosen with
  // probability k/n.
  TableBuilder b(Schema(std::vector<std::string>{"pos"}));
  const int n = 200;
  for (int64_t i = 0; i < n; ++i) b.AddRow({Value(i)});
  Table t = b.Build();

  const int k = 40, trials = 3000;
  std::vector<int> hits(n, 0);
  for (int trial = 0; trial < trials; ++trial) {
    Table s = t.SampleRows(k, 1000 + trial);
    for (int64_t r = 0; r < s.num_rows(); ++r) {
      ++hits[s.value(r, 0).int64()];
    }
  }
  double p = static_cast<double>(k) / n;
  double expect = p * trials;
  double sigma = std::sqrt(trials * p * (1 - p));
  for (int i = 0; i < n; ++i) {
    EXPECT_NEAR(hits[i], expect, 6 * sigma) << "position " << i;
  }
}

TEST(Distribution, SampleRowsDrawsWithoutReplacement) {
  TableBuilder b(Schema(std::vector<std::string>{"pos"}));
  for (int64_t i = 0; i < 100; ++i) b.AddRow({Value(i)});
  Table t = b.Build();
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Table s = t.SampleRows(60, seed);
    EXPECT_EQ(s.DistinctCount(AttributeSet{0}), 60) << "seed " << seed;
  }
}

}  // namespace
}  // namespace gordian
