// Tests for sampling-based discovery (Section 3.9): sample keys are a
// superset of true keys, strength computation, and the T(K) estimator's
// lower-bound behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/gordian.h"
#include "core/strength.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Table MakeTable(int rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(6, rows, 32, 0.6, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[5].cardinality = 64;
  spec.planted_keys.push_back({0, 5});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

TEST(Sampling, SampleRunIsFlaggedAndFullRunIsNot) {
  Table t = MakeTable(2000, 11);
  GordianOptions opts;
  opts.sample_rows = 200;
  EXPECT_TRUE(FindKeys(t, opts).sampled);
  EXPECT_FALSE(FindKeys(t).sampled);
  // sample_rows >= table is not a sample.
  opts.sample_rows = 5000;
  EXPECT_FALSE(FindKeys(t, opts).sampled);
}

// Every true key of the full dataset survives in the sample: the sample's
// minimal keys must each be a subset of... more precisely, each full-data
// key K remains unique in every subset of rows, so the sample's minimal key
// family covers K: some sample key is a subset of K.
TEST(Sampling, TrueKeysAreNeverLost) {
  Table t = MakeTable(3000, 12);
  KeyDiscoveryResult full = FindKeys(t);
  ASSERT_FALSE(full.no_keys);

  for (int64_t sample_rows : {50, 300, 1000}) {
    GordianOptions opts;
    opts.sample_rows = sample_rows;
    opts.sample_seed = 77;
    KeyDiscoveryResult s = FindKeys(t, opts);
    ASSERT_FALSE(s.no_keys);
    for (const DiscoveredKey& fk : full.keys) {
      bool covered = false;
      for (const DiscoveredKey& sk : s.keys) {
        if (fk.attrs.Covers(sk.attrs)) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "lost true key " << fk.attrs.ToString()
                           << " at sample " << sample_rows;
    }
  }
}

TEST(Sampling, FullSampleEqualsFullRun) {
  Table t = MakeTable(500, 13);
  GordianOptions opts;
  opts.sample_rows = 500;  // not a proper subset -> full run
  EXPECT_EQ(Sorted(FindKeys(t, opts).KeySets()),
            Sorted(FindKeys(t).KeySets()));
}

TEST(Sampling, ValidateKeysFillsExactStrength) {
  Table t = MakeTable(2000, 14);
  GordianOptions opts;
  opts.sample_rows = 100;
  KeyDiscoveryResult r = FindKeys(t, opts);
  for (const DiscoveredKey& k : r.keys) EXPECT_LT(k.exact_strength, 0);
  ValidateKeys(t, &r);
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_GE(k.exact_strength, 0.0);
    EXPECT_LE(k.exact_strength, 1.0);
    EXPECT_DOUBLE_EQ(k.exact_strength, t.Strength(k.attrs));
  }
  // The planted key must validate at strength exactly 1.
  bool found_true_key = false;
  for (const DiscoveredKey& k : r.keys) {
    if (k.exact_strength == 1.0) found_true_key = true;
  }
  EXPECT_TRUE(found_true_key);
}

TEST(Strength, ExactStrengthDefinition) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value(int64_t{1}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{2}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{2}), Value(int64_t{1})});
  Table t = b.Build();
  EXPECT_DOUBLE_EQ(ExactStrength(t, AttributeSet{0}), 0.5);
  EXPECT_DOUBLE_EQ(ExactStrength(t, AttributeSet{0, 1}), 0.75);
}

TEST(Strength, EstimatorMatchesFormula) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  for (int i = 0; i < 10; ++i) {
    b.AddRow({Value(int64_t{i}), Value(int64_t{i % 3})});
  }
  Table t = b.Build();
  // N=10; D_a=10, D_b=3.
  double expected_a = 1.0 - (10.0 - 10 + 1) / 12.0;
  double expected_ab = 1.0 - ((10.0 - 10 + 1) / 12.0) * ((10.0 - 3 + 1) / 12.0);
  EXPECT_DOUBLE_EQ(EstimatedStrengthLowerBound(t, AttributeSet{0}), expected_a);
  EXPECT_DOUBLE_EQ(EstimatedStrengthLowerBound(t, AttributeSet{0, 1}),
                   expected_ab);
}

TEST(Strength, EstimatorIsInUnitIntervalAndMonotoneInAttributes) {
  Table t = MakeTable(1000, 15).SampleRows(200, 3);
  AttributeSet k1{0};
  AttributeSet k2{0, 5};
  double e1 = EstimatedStrengthLowerBound(t, k1);
  double e2 = EstimatedStrengthLowerBound(t, k2);
  EXPECT_GE(e1, 0.0);
  EXPECT_LE(e1, 1.0);
  EXPECT_GE(e2, e1);  // more attributes -> higher estimated strength
}

// Statistical check of the paper's claim: "with fairly high probability,
// T(K) is a reasonably tight lower bound on the strength" of sample keys.
TEST(Strength, EstimatorIsUsuallyALowerBound) {
  int below = 0, total = 0;
  for (uint64_t trial = 0; trial < 30; ++trial) {
    Table t = MakeTable(2000, 100 + trial);
    Table sample = t.SampleRows(150, trial);
    KeyDiscoveryResult r = FindKeys(sample);
    if (r.no_keys) continue;
    for (const DiscoveredKey& k : r.keys) {
      double est = EstimatedStrengthLowerBound(sample, k.attrs);
      double exact = t.Strength(k.attrs);
      ++total;
      if (est <= exact + 1e-9) ++below;
    }
  }
  ASSERT_GT(total, 20);
  EXPECT_GE(static_cast<double>(below) / total, 0.9)
      << below << "/" << total << " keys had T(K) <= strength";
}

TEST(Sampling, EstimatedStrengthAttachedToSampleKeys) {
  Table t = MakeTable(2000, 16);
  GordianOptions opts;
  opts.sample_rows = 100;
  KeyDiscoveryResult r = FindKeys(t, opts);
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_GT(k.estimated_strength, 0.0);
    EXPECT_LE(k.estimated_strength, 1.0);
  }
}

}  // namespace
}  // namespace gordian
