// The golden property suite: on randomized tables, GORDIAN's key set must
// equal the brute-force oracle's, under every pruning combination and
// attribute ordering. This is the repository's primary correctness evidence
// (invariants 1-4 of DESIGN.md).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct SweepCase {
  int rows;
  int cols;
  uint64_t cardinality;
  double theta;
  bool plant_pair_key;  // plant a 2-column composite key
  uint64_t seed;

  std::string Name() const {
    std::string n = "r" + std::to_string(rows) + "_c" + std::to_string(cols) +
                    "_k" + std::to_string(cardinality) + "_t" +
                    std::to_string(static_cast<int>(theta * 10)) +
                    (plant_pair_key ? "_planted" : "_free") + "_s" +
                    std::to_string(seed);
    return n;
  }
};

Table MakeTable(const SweepCase& c) {
  SyntheticSpec spec =
      UniformSpec(c.cols, c.rows, c.cardinality, c.theta, c.seed);
  if (c.plant_pair_key && c.cols >= 2) {
    // Give the planted columns enough room: the pair's value space must
    // cover the row count.
    uint64_t need = 8;
    while (need * need < static_cast<uint64_t>(c.rows) * 2) need *= 2;
    spec.columns[0].cardinality = std::max<uint64_t>(c.cardinality, need);
    spec.columns[1].cardinality = std::max<uint64_t>(c.cardinality, need);
    spec.planted_keys.push_back({0, 1});
  }
  spec.ensure_unique_rows = true;
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok()) << s.ToString();
  return t;
}

class GordianVsBruteForce : public ::testing::TestWithParam<SweepCase> {};

TEST_P(GordianVsBruteForce, KeySetsMatch) {
  Table t = MakeTable(GetParam());
  BruteForceResult oracle = BruteForceAll(t);
  ASSERT_FALSE(oracle.truncated);

  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_FALSE(r.no_keys);
  EXPECT_EQ(Sorted(r.KeySets()), Sorted(oracle.keys));
}

TEST_P(GordianVsBruteForce, KeysVerifyUniqueAndMinimalAndNonKeysVerifyDuplicated) {
  Table t = MakeTable(GetParam());
  KeyDiscoveryResult r = FindKeys(t);
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_TRUE(t.IsUnique(k.attrs)) << k.attrs.ToString();
    k.attrs.ForEach([&](int a) {
      AttributeSet smaller = k.attrs;
      smaller.Reset(a);
      if (!smaller.Empty()) {
        EXPECT_FALSE(t.IsUnique(smaller))
            << "non-minimal key " << k.attrs.ToString();
      }
    });
  }
  for (const AttributeSet& nk : r.non_keys) {
    EXPECT_FALSE(t.IsUnique(nk)) << "false non-key " << nk.ToString();
  }
}

TEST_P(GordianVsBruteForce, NonKeysFormMaximalAntichain) {
  Table t = MakeTable(GetParam());
  KeyDiscoveryResult r = FindKeys(t);
  for (size_t i = 0; i < r.non_keys.size(); ++i) {
    for (size_t j = 0; j < r.non_keys.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(r.non_keys[i].Covers(r.non_keys[j]));
      }
    }
    // Maximality: adding any missing attribute to a non-key must yield a
    // key-side set, i.e., a unique projection (otherwise the non-key was
    // not maximal).
    const AttributeSet& nk = r.non_keys[i];
    for (int a = 0; a < t.num_columns(); ++a) {
      if (nk.Test(a)) continue;
      AttributeSet bigger = nk;
      bigger.Set(a);
      EXPECT_TRUE(t.IsUnique(bigger))
          << "non-key " << nk.ToString() << " is not maximal (add " << a
          << ")";
    }
  }
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  uint64_t seed = 1;
  for (int rows : {1, 2, 10, 50, 200, 1000}) {
    for (int cols : {1, 2, 3, 5, 8}) {
      for (uint64_t card : {2ull, 4ull, 16ull, 128ull}) {
        // Skip infeasible combos (cannot build enough distinct rows).
        long double space = 1;
        for (int c = 0; c < cols; ++c) space *= static_cast<long double>(card);
        if (space < rows * 2) continue;
        for (double theta : {0.0, 1.0}) {
          cases.push_back({rows, cols, card, theta, false, seed += 13});
        }
      }
    }
  }
  // Planted composite keys at various shapes.
  for (int rows : {100, 500}) {
    for (int cols : {4, 6, 9}) {
      cases.push_back({rows, cols, 8, 0.7, true, seed += 17});
      cases.push_back({rows, cols, 32, 0.3, true, seed += 17});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomTables, GordianVsBruteForce,
                         ::testing::ValuesIn(MakeSweep()),
                         [](const auto& info) { return info.param.Name(); });

// Pruning/order ablation on a fixed interesting table: every configuration
// must produce identical results (invariants 2-3).
class GordianConfigs : public ::testing::Test {
 protected:
  static Table MakeCorrelatedTable() {
    SyntheticSpec spec = UniformSpec(6, 300, 12, 0.8, 99);
    spec.columns[1].correlated_with = 0;
    spec.columns[1].correlation_noise = 0.05;
    spec.columns[3].correlated_with = 2;
    spec.columns[3].correlation_noise = 0.0;  // exact FD
    spec.columns[0].cardinality = 64;
    spec.columns[2].cardinality = 64;
    Table t;
    Status s = GenerateSynthetic(spec, &t);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return t;
  }
};

TEST_F(GordianConfigs, AllPruningAndOrderCombosAgreeWithOracle) {
  Table t = MakeCorrelatedTable();
  const auto oracle = Sorted(BruteForceAll(t).keys);

  for (auto order : {GordianOptions::AttributeOrder::kSchema,
                     GordianOptions::AttributeOrder::kCardinalityDesc,
                     GordianOptions::AttributeOrder::kCardinalityAsc,
                     GordianOptions::AttributeOrder::kRandom}) {
    for (bool singleton : {false, true}) {
      for (bool futility : {false, true}) {
        for (bool single_entity : {false, true}) {
          for (auto build : {GordianOptions::TreeBuild::kSorted,
                             GordianOptions::TreeBuild::kInsertion}) {
            GordianOptions o;
            o.attribute_order = order;
            o.order_seed = 123;
            o.singleton_pruning = singleton;
            o.futility_pruning = futility;
            o.single_entity_pruning = single_entity;
            o.tree_build = build;
            EXPECT_EQ(Sorted(FindKeys(t, o).KeySets()), oracle)
                << "order=" << static_cast<int>(order)
                << " singleton=" << singleton << " futility=" << futility
                << " single_entity=" << single_entity;
          }
        }
      }
    }
  }
}

TEST_F(GordianConfigs, RandomOrderSeedsAgree) {
  Table t = MakeCorrelatedTable();
  const auto expected = Sorted(FindKeys(t).KeySets());
  for (uint64_t seed = 0; seed < 8; ++seed) {
    GordianOptions o;
    o.attribute_order = GordianOptions::AttributeOrder::kRandom;
    o.order_seed = seed;
    EXPECT_EQ(Sorted(FindKeys(t, o).KeySets()), expected) << "seed " << seed;
  }
}

// Edge cases.
TEST(GordianEdge, SingleRowTableEverySingletonIsKey) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  b.AddRow({Value(int64_t{1}), Value("x"), Value(2.0)});
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_FALSE(r.no_keys);
  EXPECT_EQ(Sorted(r.KeySets()),
            Sorted({AttributeSet{0}, AttributeSet{1}, AttributeSet{2}}));
  EXPECT_TRUE(r.non_keys.empty());
}

TEST(GordianEdge, EmptyTableEverySingletonIsKey) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_FALSE(r.no_keys);
  EXPECT_EQ(r.keys.size(), 2u);
}

TEST(GordianEdge, ZeroColumnTable) {
  TableBuilder b((Schema()));
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_FALSE(r.no_keys);
}

TEST(GordianEdge, ConstantColumnNeverInAKey) {
  TableBuilder b(Schema(std::vector<std::string>{"const", "id"}));
  for (int i = 0; i < 20; ++i) {
    b.AddRow({Value("same"), Value(int64_t{i})});
  }
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.keys[0].attrs, AttributeSet{1});
}

TEST(GordianEdge, AllColumnsTogetherOnlyKey) {
  // Craft a table where only the full set {0,1,2} is a key: every pair has
  // a duplicate.
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  b.AddRow({Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{1}), Value(int64_t{0})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{0}), Value(int64_t{0})});
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_EQ(r.keys.size(), 1u);
  EXPECT_EQ(r.keys[0].attrs, (AttributeSet{0, 1, 2}));
  EXPECT_EQ(Sorted(BruteForceAll(t).keys), Sorted(r.KeySets()));
}

TEST(GordianEdge, MaximumWidthTable) {
  // AttributeSet::kMaxAttributes (=128) columns: the widest schema the
  // library accepts. High cardinalities keep the answer small (see the
  // 66-attribute case below); the point is that nothing in the bitmap,
  // tree, or conversion path breaks at the boundary.
  SyntheticSpec spec = UniformSpec(AttributeSet::kMaxAttributes, 60, 50000,
                                   0.0, 777);
  spec.columns[0].cardinality = 8;
  spec.columns[127].cardinality = 16;
  spec.planted_keys.push_back({0, 127});
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  ASSERT_EQ(t.num_columns(), 128);
  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_FALSE(r.no_keys);
  EXPECT_FALSE(r.keys.empty());
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_TRUE(t.IsUnique(k.attrs));
  }
  // The planted pair spans both bitmap words (bit 0 and bit 127).
  bool spanning = false;
  for (const DiscoveredKey& k : r.keys) {
    if ((AttributeSet{0, 127}).Covers(k.attrs)) spanning = true;
  }
  EXPECT_TRUE(spanning);
}

TEST(GordianEdge, WideTableSixtySixAttributes) {
  // The paper's widest relation has 66 attributes; ensure nothing in the
  // bitmap/tree path breaks past 64.
  // High cardinalities keep the non-key antichain small (small domains would
  // make every column pair a non-key by pigeonhole, and the minimal-key
  // family itself combinatorial — the #P-hard regime the paper sidesteps by
  // targeting realistic data). Columns 0 and 65 are low-cardinality so only
  // their planted combination is a key among them.
  SyntheticSpec spec = UniformSpec(66, 80, 20000, 0.0, 4242);
  spec.columns[0].cardinality = 16;
  spec.columns[65].cardinality = 16;
  spec.planted_keys.push_back({0, 65});
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_FALSE(r.no_keys);
  // The planted key (or a subset-free refinement) must be discovered.
  bool found = false;
  for (const DiscoveredKey& k : r.keys) {
    if ((AttributeSet{0, 65}).Covers(k.attrs)) found = true;
  }
  EXPECT_TRUE(found);
  for (const DiscoveredKey& k : r.keys) EXPECT_TRUE(t.IsUnique(k.attrs));
}

}  // namespace
}  // namespace gordian
