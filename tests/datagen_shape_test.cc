// Deeper shape validation of the dataset generators: the statistical
// texture the experiments rely on (hierarchies, planted keys, foreign-key
// structure, determinism, scaling behavior).

#include <gtest/gtest.h>

#include <map>

#include "core/gordian.h"
#include "datagen/baseball_like.h"
#include "datagen/datasets.h"
#include "datagen/opic_like.h"
#include "datagen/tpch_lite.h"

namespace gordian {
namespace {

const Table& Find(const std::vector<NamedTable>& db, const std::string& name) {
  for (const NamedTable& t : db) {
    if (t.name == name) return t.table;
  }
  ADD_FAILURE() << "missing table " << name;
  return db.front().table;
}

TEST(OpicShape, KeyFamilyStaysSmallAtEveryWidth) {
  // The design bet of the generator (see opic_like.cc): the minimal-key
  // family must stay small at any width, as in real catalog data.
  for (int attrs : {5, 17, 34, 50, 66}) {
    Table t = GenerateOpicLike(4000, attrs, 300 + attrs);
    KeyDiscoveryResult r = FindKeys(t);
    ASSERT_FALSE(r.no_keys) << attrs;
    EXPECT_LE(r.keys.size(), 8u) << attrs;
    EXPECT_LE(r.non_keys.size(), 8u) << attrs;
    // (model_no, config_no) is always among the minimal keys.
    bool planted = false;
    for (const DiscoveredKey& k : r.keys) {
      if (k.attrs == (AttributeSet{0, 4})) planted = true;
    }
    EXPECT_TRUE(planted) << attrs;
  }
}

TEST(OpicShape, HierarchyIsNearlyFunctional) {
  Table t = GenerateOpicLike(8000, 12, 301);
  // brand (1) is a near-function of model_no (0): the pair's distinct count
  // barely exceeds model_no's own.
  int64_t d0 = t.DistinctCount(AttributeSet{0});
  int64_t d01 = t.DistinctCount(AttributeSet{0, 1});
  EXPECT_LE(d01, d0 + d0 / 10);
  // product_line (2) is coarser than brand (1).
  EXPECT_LE(t.ColumnCardinality(2), t.ColumnCardinality(1));
}

TEST(OpicShape, SerialNumberIsAKeyWhenPresent) {
  Table t = GenerateOpicLike(3000, 10, 302);
  EXPECT_EQ(t.schema().name(7), "serial_no");
  EXPECT_TRUE(t.IsUnique(AttributeSet{7}));
}

TEST(TpchShape, RowCountsScaleWithScaleFactor) {
  auto small = GenerateTpchLite(0.001, 303);
  auto large = GenerateTpchLite(0.004, 303);
  int64_t small_orders = Find(small, "orders").num_rows();
  int64_t large_orders = Find(large, "orders").num_rows();
  EXPECT_NEAR(static_cast<double>(large_orders) / small_orders, 4.0, 0.5);
  // lineitem averages ~4 lines per order.
  EXPECT_NEAR(static_cast<double>(Find(large, "lineitem").num_rows()) /
                  large_orders,
              4.0, 1.0);
}

TEST(TpchShape, OrderKeysAreSparse) {
  auto db = GenerateTpchLite(0.002, 304);
  const Table& orders = Find(db, "orders");
  int okey = orders.schema().Find("o_orderkey");
  int64_t max_key = 0;
  for (int64_t r = 0; r < orders.num_rows(); ++r) {
    max_key = std::max(max_key, orders.value(r, okey).int64());
  }
  // dbgen-style: keys live in a space ~4x the row count.
  EXPECT_GT(max_key, orders.num_rows() * 3);
}

TEST(TpchShape, PartsuppHasExactlyFourSuppliersPerPart) {
  auto db = GenerateTpchLite(0.002, 305);
  const Table& ps = Find(db, "partsupp");
  int pk = ps.schema().Find("ps_partkey");
  std::map<int64_t, int> per_part;
  for (int64_t r = 0; r < ps.num_rows(); ++r) {
    ++per_part[ps.value(r, pk).int64()];
  }
  for (const auto& [part, count] : per_part) {
    ASSERT_EQ(count, 4) << "part " << part;
  }
}

TEST(TpchShape, NationAndRegionAreFixed) {
  auto db = GenerateTpchLite(0.001, 306);
  EXPECT_EQ(Find(db, "nation").num_rows(), 25);
  EXPECT_EQ(Find(db, "region").num_rows(), 5);
  const Table& nation = Find(db, "nation");
  int rk = nation.schema().Find("n_regionkey");
  for (int64_t r = 0; r < nation.num_rows(); ++r) {
    int64_t v = nation.value(r, rk).int64();
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 5);
  }
}

TEST(BaseballShape, CompositeKeysHoldInStatTables) {
  auto db = GenerateBaseballLike(0.1, 307);
  const Table& games = Find(db, "games");
  EXPECT_TRUE(games.IsUnique(
      {AttributeSet{games.schema().Find("season"),
                    games.schema().Find("game_no")}}));
  const Table& all_star = Find(db, "all_star");
  EXPECT_TRUE(all_star.IsUnique(
      {AttributeSet{all_star.schema().Find("season"),
                    all_star.schema().Find("league_slot")}}));
  const Table& playoffs = Find(db, "playoffs");
  EXPECT_TRUE(playoffs.IsUnique({AttributeSet{
      playoffs.schema().Find("season"), playoffs.schema().Find("round"),
      playoffs.schema().Find("game_in_round")}}));
}

TEST(BaseballShape, TotalTuplesScaleRoughlyLinearly) {
  Dataset d1 = MakeBaseballDataset(0.05, 308);
  Dataset d2 = MakeBaseballDataset(0.2, 308);
  EXPECT_GT(d2.TotalTuples(), d1.TotalTuples() * 2);
}

TEST(Generators, FullyDeterministicAcrossCalls) {
  auto a = GenerateTpchLite(0.001, 309);
  auto b = GenerateTpchLite(0.001, 309);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].table.num_rows(), b[i].table.num_rows());
    for (int64_t r = 0; r < std::min<int64_t>(50, a[i].table.num_rows());
         ++r) {
      for (int c = 0; c < a[i].table.num_columns(); ++c) {
        ASSERT_EQ(a[i].table.value(r, c), b[i].table.value(r, c));
      }
    }
  }
  Table o1 = GenerateOpicLike(500, 20, 310);
  Table o2 = GenerateOpicLike(500, 20, 310);
  for (int64_t r = 0; r < o1.num_rows(); r += 17) {
    for (int c = 0; c < o1.num_columns(); ++c) {
      ASSERT_EQ(o1.code(r, c), o2.code(r, c));
    }
  }
}

TEST(Generators, DifferentSeedsDiffer) {
  Table a = GenerateOpicLike(500, 10, 311);
  Table b = GenerateOpicLike(500, 10, 312);
  int diffs = 0;
  for (int64_t r = 0; r < a.num_rows(); ++r) {
    if (a.value(r, 0) != b.value(r, 0)) ++diffs;
  }
  EXPECT_GT(diffs, 100);
}

TEST(FactTable, DenormalizedCorrelationsExist) {
  Table fact = GenerateTpchFact(20000, 313);
  // f_nationkey is functionally determined by f_custkey (denormalized join).
  int cust = fact.schema().Find("f_custkey");
  int nation = fact.schema().Find("f_nationkey");
  EXPECT_EQ(fact.DistinctCount(AttributeSet{cust}),
            fact.DistinctCount({AttributeSet{cust, nation}}));
}

}  // namespace
}  // namespace gordian
