// Unit tests for the NonKeySet container (Algorithm 5).

#include "core/non_key_set.h"

#include <gtest/gtest.h>

namespace gordian {
namespace {

TEST(NonKeySet, InsertsAndRejectsCovered) {
  NonKeySet s;
  EXPECT_TRUE(s.Insert(AttributeSet{0, 1}));
  // Subsets of an existing non-key are redundant.
  EXPECT_FALSE(s.Insert(AttributeSet{0}));
  EXPECT_FALSE(s.Insert(AttributeSet{1}));
  EXPECT_FALSE(s.Insert(AttributeSet{0, 1}));  // duplicates too
  EXPECT_EQ(s.size(), 1);
}

TEST(NonKeySet, SupersetEvictsCoveredMembers) {
  NonKeySet s;
  EXPECT_TRUE(s.Insert(AttributeSet{0}));
  EXPECT_TRUE(s.Insert(AttributeSet{2}));
  EXPECT_TRUE(s.Insert(AttributeSet{0, 1}));  // evicts {0}
  EXPECT_EQ(s.size(), 2);
  EXPECT_TRUE(s.CoversSet(AttributeSet{0}));
  EXPECT_TRUE(s.CoversSet(AttributeSet{2}));
  EXPECT_TRUE(s.Insert(AttributeSet{0, 1, 2}));  // evicts both
  EXPECT_EQ(s.size(), 1);
}

TEST(NonKeySet, MaintainsAntichainInvariant) {
  NonKeySet s;
  s.Insert(AttributeSet{0, 1});
  s.Insert(AttributeSet{1, 2});
  s.Insert(AttributeSet{2, 3});
  s.Insert(AttributeSet{0, 1, 2});  // evicts {0,1} and {1,2}
  const auto& nks = s.non_keys();
  for (size_t i = 0; i < nks.size(); ++i) {
    for (size_t j = 0; j < nks.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(nks[i].Covers(nks[j]));
      }
    }
  }
  EXPECT_EQ(s.size(), 2);
}

TEST(NonKeySet, CoversSetSemantics) {
  NonKeySet s;
  s.Insert(AttributeSet{0, 1, 2});
  EXPECT_TRUE(s.CoversSet(AttributeSet{0, 2}));
  EXPECT_TRUE(s.CoversSet(AttributeSet{}));  // empty covered by anything
  EXPECT_FALSE(s.CoversSet(AttributeSet{3}));
  EXPECT_FALSE(s.CoversSet(AttributeSet{0, 3}));
  NonKeySet empty;
  EXPECT_FALSE(empty.CoversSet(AttributeSet{}));
}

TEST(NonKeySet, StatsCounters) {
  GordianStats stats;
  NonKeySet s(&stats);
  s.Insert(AttributeSet{0});
  s.Insert(AttributeSet{0});       // rejected (covered)
  s.Insert(AttributeSet{0, 1});    // evicts {0}
  EXPECT_EQ(stats.non_key_insert_attempts, 3);
  EXPECT_EQ(stats.non_keys_rejected_covered, 1);
  EXPECT_EQ(stats.non_keys_evicted, 1);
}

TEST(NonKeySet, EmptySetMemberCoversOnlyEmpty) {
  NonKeySet s;
  EXPECT_TRUE(s.Insert(AttributeSet{}));
  EXPECT_TRUE(s.CoversSet(AttributeSet{}));
  EXPECT_FALSE(s.CoversSet(AttributeSet{0}));
  // Any non-empty non-key evicts the empty one.
  EXPECT_TRUE(s.Insert(AttributeSet{0}));
  EXPECT_EQ(s.size(), 1);
}

}  // namespace
}  // namespace gordian
