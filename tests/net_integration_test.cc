// Multi-process integration test for the distributed profiling front-end:
// a router and two shard-owner workers run as real OS processes (the
// profile_service_demo binary in --serve/--route mode), a client drives
// load through the router, one worker is SIGKILLed mid-load and later
// restarted on the same port, and every accepted request must still return
// a report byte-identical to a local single-process run — no wrong
// answers, no torn reports, no hangs.
//
// The demo binary's path arrives via the GORDIAN_DEMO_BIN compile
// definition (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/wire.h"
#include "common/fault_fs.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"

#ifndef GORDIAN_DEMO_BIN
#error "GORDIAN_DEMO_BIN must point at the profile_service_demo binary"
#endif

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(6, rows, 24, 0.5, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[2].cardinality = 64;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

// The byte-identity yardstick: two results are the same iff their wire
// encodings are the same bytes.
std::string ResultBytes(const KeyDiscoveryResult& result) {
  std::string bytes;
  EncodeDiscoveryResult(result, &bytes);
  return bytes;
}

pid_t Spawn(const std::vector<std::string>& args) {
  std::vector<char*> argv;
  std::string bin = GORDIAN_DEMO_BIN;
  argv.push_back(bin.data());
  std::vector<std::string> owned = args;
  for (std::string& a : owned) argv.push_back(a.data());
  argv.push_back(nullptr);
  pid_t pid = fork();
  if (pid == 0) {
    execv(argv[0], argv.data());
    _exit(127);  // exec failed
  }
  EXPECT_GT(pid, 0);
  return pid;
}

// Polls for the port file a spawned daemon publishes by atomic rename.
int WaitForPort(const std::string& path) {
  FileSystem* fs = DefaultFileSystem();
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < give_up) {
    std::string text;
    if (fs->ReadFile(path, &text).ok()) {
      int port = std::atoi(text.c_str());
      if (port > 0) return port;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return 0;
}

void KillAndReap(pid_t pid, int sig) {
  if (pid <= 0) return;
  kill(pid, sig);
  int status = 0;
  waitpid(pid, &status, 0);
}

class NetIntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/gordian_net_itest_XXXXXX";
    ASSERT_NE(mkdtemp(tmpl), nullptr);
    dir_ = tmpl;
  }

  void TearDown() override {
    KillAndReap(router_pid_, SIGTERM);
    KillAndReap(worker1_pid_, SIGTERM);
    KillAndReap(worker2_pid_, SIGTERM);
    // Best-effort scrub of the scratch directory.
    std::string cmd = "rm -rf '" + dir_ + "'";
    (void)system(cmd.c_str());
  }

  pid_t SpawnWorker(const std::string& shards, int port,
                    const std::string& port_file) {
    return Spawn({"--serve", "--shards=" + shards,
                  "--port=" + std::to_string(port),
                  "--catalog-root=" + dir_ + "/catalogs", "--threads=2",
                  "--port-file=" + port_file});
  }

  std::string dir_;
  pid_t router_pid_ = 0;
  pid_t worker1_pid_ = 0;
  pid_t worker2_pid_ = 0;
};

TEST_F(NetIntegrationTest, SurvivesWorkerKillAndRestartWithIdenticalReports) {
  // --- local baseline: the answer every remote report must match ---------
  constexpr int kNumTables = 10;
  constexpr int64_t kRows = 400;
  std::vector<Table> tables;
  std::vector<std::string> baseline;
  {
    ProfilingService local;
    for (int i = 0; i < kNumTables; ++i) {
      tables.push_back(MakeTable(kRows, 7000 + i));
    }
    for (int i = 0; i < kNumTables; ++i) {
      ProfileOutcome out =
          local.Wait(local.SubmitTable("t" + std::to_string(i), &tables[i]));
      ASSERT_EQ(out.info.state, JobState::kSucceeded);
      baseline.push_back(ResultBytes(out.result));
    }
  }

  // --- bring up the fleet: two workers, then the router ------------------
  worker1_pid_ = SpawnWorker("0-7", 0, dir_ + "/w1.port");
  worker2_pid_ = SpawnWorker("8-15", 0, dir_ + "/w2.port");
  const int w1_port = WaitForPort(dir_ + "/w1.port");
  const int w2_port = WaitForPort(dir_ + "/w2.port");
  ASSERT_GT(w1_port, 0) << "worker 1 never published its port";
  ASSERT_GT(w2_port, 0) << "worker 2 never published its port";

  router_pid_ = Spawn(
      {"--route",
       "--workers=127.0.0.1:" + std::to_string(w1_port) + "/0-7,127.0.0.1:" +
           std::to_string(w2_port) + "/8-15",
       "--port-file=" + dir_ + "/router.port"});
  const int router_port = WaitForPort(dir_ + "/router.port");
  ASSERT_GT(router_port, 0) << "router never published its port";

  // --- drive load; SIGKILL worker 2 mid-load; restart it -----------------
  // Client threads profile the tables in a loop until told to stop, so the
  // load provably spans every phase: both workers up, one worker dead
  // (failover + retries), and the restarted worker recovering its catalog
  // from disk. Every accepted reply is checked against the local baseline.
  constexpr int kClientThreads = 4;
  std::atomic<bool> stop_load{false};
  std::atomic<int> accepted{0};
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::mutex failure_mu;
  std::string first_failure;

  auto client_main = [&](int thread_idx) {
    ProfileClient client("127.0.0.1", router_port);
    RemoteProfileOptions options;
    options.client_id = "load-" + std::to_string(thread_idx);
    options.max_attempts = 12;
    options.deadline_millis = 10'000;
    while (!stop_load.load()) {
      for (int i = 0; i < kNumTables; ++i) {
        RemoteOutcome outcome;
        Status s = client.Profile("t" + std::to_string(i), tables[i],
                                  options, &outcome);
        if (!s.ok()) {
          failures.fetch_add(1);
          std::lock_guard<std::mutex> lock(failure_mu);
          if (first_failure.empty()) first_failure = s.ToString();
          continue;
        }
        accepted.fetch_add(1);
        if (ResultBytes(outcome.result) != baseline[i]) {
          mismatches.fetch_add(1);
        }
      }
    }
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < kClientThreads; ++t) {
    clients.emplace_back(client_main, t);
  }

  // Let the first requests land, then kill worker 2 without warning.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  KillAndReap(worker2_pid_, SIGKILL);
  worker2_pid_ = 0;

  // While the owner of shards 8-15 is dead, a request for one of its
  // tables must still succeed — served by the survivor via failover — and
  // still match the baseline exactly.
  {
    int high_table = -1;
    for (int i = 0; i < kNumTables; ++i) {
      if (KeyCatalog::ShardIndexOf(TableFingerprint(tables[i])) >= 8) {
        high_table = i;
        break;
      }
    }
    ASSERT_GE(high_table, 0) << "no table landed in shards 8-15";
    ProfileClient prober("127.0.0.1", router_port);
    RemoteProfileOptions options;
    options.client_id = "prober";
    options.max_attempts = 12;
    RemoteOutcome outcome;
    Status s = prober.Profile("t" + std::to_string(high_table),
                              tables[high_table], options, &outcome);
    ASSERT_TRUE(s.ok()) << "failover probe failed: " << s.ToString();
    EXPECT_EQ(outcome.served_by, "owner-00-07");
    EXPECT_EQ(ResultBytes(outcome.result), baseline[high_table]);
  }

  // Restart the dead worker on the SAME port (the router's specs are
  // fixed) over the same catalog root, and wait until the router's health
  // probe sees the whole fleet up again.
  worker2_pid_ = SpawnWorker("8-15", w2_port, dir_ + "/w2-restart.port");
  ASSERT_EQ(WaitForPort(dir_ + "/w2-restart.port"), w2_port)
      << "restarted worker could not rebind its port";
  {
    ProfileClient router_probe("127.0.0.1", router_port);
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(20);
    for (;;) {
      HealthInfo info;
      if (router_probe.Health(&info).ok() && info.workers_up == 2) break;
      ASSERT_LT(std::chrono::steady_clock::now(), give_up)
          << "router never saw the restarted worker come back";
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  // One more spell of load against the healed fleet, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop_load.store(true);
  for (std::thread& t : clients) t.join();

  // Every accepted request returned the exact local result, and with
  // generous retries no request was given up on — across the kill, the
  // outage, and the restart.
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(failures.load(), 0) << "first failure: " << first_failure;
  EXPECT_GE(accepted.load(), kClientThreads * kNumTables);

  // The restarted owner answers again, from its recovered catalog: a
  // direct request for the high-shard table is a catalog hit, not a
  // rediscovery — SIGKILL lost nothing that had been flushed.
  {
    ProfileClient direct("127.0.0.1", w2_port);
    HealthInfo info;
    ASSERT_TRUE(direct.Health(&info).ok());
    EXPECT_EQ(info.shard_first, 8);
    EXPECT_EQ(info.shard_last, 15);
  }
}

}  // namespace
}  // namespace gordian
