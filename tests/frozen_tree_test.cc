// Tests for the frozen prefix-tree (core/frozen_tree.h): flat-layout
// invariants after Freeze, byte-identical equivalence of the frozen
// traversal against the pointer-tree baseline (serial and parallel,
// complete and aborted runs), SIMD kernel agreement with the scalar
// reference, and the tree-cache integration that serves prefrozen
// artifacts on hits.

#include "core/frozen_tree.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/gordian.h"
#include "core/non_key_set.h"
#include "core/pipeline.h"
#include "core/prefix_tree.h"
#include "datagen/synthetic.h"
#include "service/tree_cache.h"
#include "table/fingerprint.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed, int columns = 6) {
  SyntheticSpec spec = UniformSpec(columns, rows, 24, 0.4, seed);
  spec.columns[0].cardinality = 200;
  spec.columns[2].cardinality = 48;
  spec.planted_keys.push_back({0, 2});
  spec.planted_keys.push_back({1, 3, 4});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

// The pointer-tree run every frozen run is compared against: serial,
// frozen path forced off.
KeyDiscoveryResult PointerBaseline(const Table& t, GordianOptions opt) {
  opt.traversal_threads = -1;
  opt.frozen_traversal = false;
  return FindKeys(t, opt);
}

void ExpectSameReport(const Table& table, const KeyDiscoveryResult& a,
                      const KeyDiscoveryResult& b) {
  EXPECT_EQ(FormatResult(table, a), FormatResult(table, b));
  EXPECT_EQ(a.no_keys, b.no_keys);
  EXPECT_EQ(a.incomplete, b.incomplete);
  EXPECT_EQ(a.incomplete_reason, b.incomplete_reason);
  ASSERT_EQ(a.non_keys.size(), b.non_keys.size());
  for (size_t i = 0; i < a.non_keys.size(); ++i) {
    EXPECT_EQ(a.non_keys[i], b.non_keys[i]);
  }
}

// The frozen traversal replays the pointer traversal decision-for-decision,
// so the work counters must agree exactly, not just the results.
void ExpectSameCounters(const GordianStats& a, const GordianStats& b) {
  EXPECT_EQ(a.nodes_visited, b.nodes_visited);
  EXPECT_EQ(a.merges_performed, b.merges_performed);
  EXPECT_EQ(a.merge_nodes_created, b.merge_nodes_created);
  EXPECT_EQ(a.singleton_traversal_prunes, b.singleton_traversal_prunes);
  EXPECT_EQ(a.singleton_merge_prunes, b.singleton_merge_prunes);
  EXPECT_EQ(a.single_entity_prunes, b.single_entity_prunes);
  EXPECT_EQ(a.futility_prunes, b.futility_prunes);
  EXPECT_EQ(a.final_non_keys, b.final_non_keys);
}

TEST(FrozenTreeLayoutTest, FreezePreservesStructure) {
  Table t = MakeTable(2000, 11);
  std::vector<int> order(static_cast<size_t>(t.num_columns()));
  std::iota(order.begin(), order.end(), 0);
  PrefixTree tree =
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
  std::unique_ptr<FrozenTree> frozen = FrozenTree::Freeze(tree);
  ASSERT_NE(frozen, nullptr);

  EXPECT_EQ(frozen->num_levels(), tree.num_levels());
  EXPECT_EQ(frozen->num_entities(), tree.num_entities());
  EXPECT_EQ(frozen->node_count(), tree.node_count());
  EXPECT_EQ(frozen->cell_count(), tree.cell_count());
  EXPECT_EQ(frozen->attr_order(), tree.attr_order());
  EXPECT_GT(frozen->ApproxBytes(), 0);
  EXPECT_GT(frozen->BytesPerNode(), 0.0);
  EXPECT_TRUE(frozen->AllRefsAreOne());

  const int depth = frozen->num_levels();
  EXPECT_EQ(frozen->level(0).num_nodes(), 1u);  // the root
  int64_t total_nodes = 0, total_cells = 0;
  for (int l = 0; l < depth; ++l) {
    const FrozenTree::Level& lv = frozen->level(l);
    ASSERT_EQ(lv.cell_begin.size(), lv.num_nodes() + 1);
    ASSERT_EQ(lv.count.size(), lv.num_cells());
    ASSERT_EQ(lv.ref.size(), lv.num_nodes());
    EXPECT_EQ(lv.cell_begin.front(), 0u);
    EXPECT_EQ(lv.cell_begin.back(), lv.num_cells());
    for (size_t i = 0; i < lv.num_nodes(); ++i) {
      const uint32_t b = lv.cell_begin[i], e = lv.cell_begin[i + 1];
      ASSERT_LE(b, e);
      int64_t entity_sum = 0;
      for (uint32_t c = b; c < e; ++c) {
        if (c > b) EXPECT_LT(lv.code[c - 1], lv.code[c]);  // sorted, strict
        EXPECT_GT(lv.count[c], 0);
        entity_sum += lv.count[c];
      }
      EXPECT_EQ(entity_sum, lv.entity_total[i]);
      EXPECT_EQ(lv.ref[i], 1);
    }
    // BFS identity: level l's cell with global index g is the parent of
    // node g at level l + 1.
    if (l + 1 < depth) {
      EXPECT_EQ(frozen->level(l + 1).num_nodes(), lv.num_cells());
    }
    total_nodes += static_cast<int64_t>(lv.num_nodes());
    total_cells += static_cast<int64_t>(lv.num_cells());
  }
  EXPECT_EQ(total_nodes, frozen->node_count());
  EXPECT_EQ(total_cells, frozen->cell_count());
}

TEST(FrozenTraversalTest, SerialMatchesPointerBaseline) {
  for (uint64_t seed : {3u, 17u, 41u}) {
    Table t = MakeTable(2500, seed);
    GordianOptions opt;
    KeyDiscoveryResult baseline = PointerBaseline(t, opt);

    GordianOptions froz = opt;
    froz.traversal_threads = -1;
    froz.frozen_traversal = true;
    KeyDiscoveryResult frozen = FindKeys(t, froz);
    if (FrozenTreesEnabled()) {
      EXPECT_TRUE(frozen.stats.frozen_traversal_used);
      EXPECT_GT(frozen.stats.frozen_tree_bytes, 0);
    }
    ExpectSameReport(t, baseline, frozen);
    ExpectSameCounters(baseline.stats, frozen.stats);
  }
}

TEST(FrozenTraversalTest, ParallelMatchesPointerBaseline) {
  for (uint64_t seed : {7u, 29u}) {
    Table t = MakeTable(2500, seed);
    GordianOptions opt;
    KeyDiscoveryResult baseline = PointerBaseline(t, opt);

    GordianOptions par = opt;
    par.traversal_threads = 8;
    par.frozen_traversal = true;
    KeyDiscoveryResult frozen = FindKeys(t, par);
    ExpectSameReport(t, baseline, frozen);
    // Work counters are timing-dependent in parallel mode (futility pruning
    // fires off other workers' published snapshots), so only the
    // deterministic outcome is compared — like the pointer-mode parallel
    // equivalence tests.
    EXPECT_EQ(baseline.stats.final_non_keys, frozen.stats.final_non_keys);
  }
}

TEST(FrozenTraversalTest, RandomizedFuzzAcrossShapes) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 6; ++round) {
    const int columns = 4 + static_cast<int>(rng() % 4);       // 4..7
    const int64_t rows = 500 + static_cast<int64_t>(rng() % 2000);
    const int card = 4 + static_cast<int>(rng() % 40);
    SyntheticSpec spec =
        UniformSpec(columns, rows, card, 0.5, rng());
    Table t;
    ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());

    GordianOptions opt;
    opt.tree_build = (round % 2 == 0) ? GordianOptions::TreeBuild::kSorted
                                      : GordianOptions::TreeBuild::kInsertion;
    KeyDiscoveryResult baseline = PointerBaseline(t, opt);

    GordianOptions froz = opt;
    froz.traversal_threads = (round % 3 == 0) ? 8 : -1;
    froz.frozen_traversal = true;
    KeyDiscoveryResult frozen = FindKeys(t, froz);
    ExpectSameReport(t, baseline, frozen);
    if (froz.traversal_threads < 0) {
      ExpectSameCounters(baseline.stats, frozen.stats);
    }
  }
}

TEST(FrozenTraversalTest, NonKeyBudgetAbortMatchesPointerBaseline) {
  Table t = MakeTable(3000, 53);
  GordianOptions opt;
  opt.max_non_keys = 2;
  KeyDiscoveryResult baseline = PointerBaseline(t, opt);
  ASSERT_TRUE(baseline.incomplete);
  EXPECT_EQ(baseline.incomplete_reason, AbortReason::kNonKeyBudget);

  GordianOptions froz = opt;
  froz.traversal_threads = -1;
  froz.frozen_traversal = true;
  KeyDiscoveryResult frozen = FindKeys(t, froz);
  ExpectSameReport(t, baseline, frozen);
  ExpectSameCounters(baseline.stats, frozen.stats);
}

TEST(FrozenTraversalTest, PreCancelledRunAbortsWithCancelled) {
  Table t = MakeTable(1500, 59);
  std::atomic<bool> cancel{true};
  GordianOptions opt;
  opt.cancel_flag = &cancel;
  opt.traversal_threads = -1;
  opt.frozen_traversal = true;
  KeyDiscoveryResult r = FindKeys(t, opt);
  EXPECT_TRUE(r.incomplete);
  EXPECT_EQ(r.incomplete_reason, AbortReason::kCancelled);
  EXPECT_TRUE(r.keys.empty());
}

TEST(FrozenTraversalTest, AbortedRunFullyUnwindsFrozenRefs) {
  Table t = MakeTable(3000, 61);
  std::vector<int> order(static_cast<size_t>(t.num_columns()));
  std::iota(order.begin(), order.end(), 0);
  PrefixTree tree =
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
  std::unique_ptr<FrozenTree> frozen = FrozenTree::Freeze(tree);

  GordianOptions opt;
  opt.max_non_keys = 1;  // trips almost immediately, mid-recursion
  GordianStats stats;
  NonKeySet set(&stats);
  FrozenNonKeyFinder finder(*frozen, opt, &set, &stats);
  EXPECT_FALSE(finder.Run());
  EXPECT_EQ(finder.abort_reason(), AbortReason::kNonKeyBudget);
  // The abort unwound every temporary share: the frozen tree is
  // bit-identical to freshly frozen and can serve the next run.
  EXPECT_TRUE(frozen->AllRefsAreOne());

  GordianOptions opt2;  // named: the finder keeps a reference to it
  GordianStats stats2;
  NonKeySet set2(&stats2);
  FrozenNonKeyFinder second(*frozen, opt2, &set2, &stats2);
  EXPECT_TRUE(second.Run());
  EXPECT_TRUE(frozen->AllRefsAreOne());
}

TEST(FrozenTraversalTest, OptionFlagForcesPointerPath) {
  Table t = MakeTable(1200, 67);
  GordianOptions opt;
  opt.frozen_traversal = false;
  KeyDiscoveryResult r = FindKeys(t, opt);
  EXPECT_FALSE(r.stats.frozen_traversal_used);
  EXPECT_EQ(r.stats.frozen_tree_bytes, 0);
  EXPECT_FALSE(ResolveFrozenTraversal(opt));
}

TEST(FrozenSimdTest, KernelsAgreeWithScalarReference) {
  EXPECT_NE(frozen_simd::ActiveKernel(), nullptr);
  std::mt19937_64 rng(42);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng() % 70;
    std::vector<uint32_t> codes(n);
    uint32_t next = 0;
    for (size_t i = 0; i < n; ++i) {
      next += 1 + static_cast<uint32_t>(rng() % 50);
      codes[i] = next;
    }
    // Probe below, inside, between, and above the span — including values
    // past INT32_MAX, which the AVX2 kernel handles via the sign-bias trick.
    for (int probe = 0; probe < 8; ++probe) {
      uint32_t target = static_cast<uint32_t>(rng());
      if (probe < 4 && n > 0) target = codes[rng() % n] + (probe % 2);
      EXPECT_EQ(frozen_simd::LowerBound(codes.data(), n, target),
                frozen_simd::LowerBoundScalar(codes.data(), n, target))
          << "n=" << n << " target=" << target;
    }

    std::vector<int64_t> counts(n, 1);
    EXPECT_EQ(frozen_simd::AnyCountNotOne(counts.data(), n),
              frozen_simd::AnyCountNotOneScalar(counts.data(), n));
    if (n > 0) {
      counts[rng() % n] = 2 + static_cast<int64_t>(rng() % 5);
      EXPECT_TRUE(frozen_simd::AnyCountNotOne(counts.data(), n));
      EXPECT_EQ(frozen_simd::AnyCountNotOne(counts.data(), n),
                frozen_simd::AnyCountNotOneScalar(counts.data(), n));
    }
  }
}

TEST(FrozenTreeCacheTest, HitServesPrefrozenArtifact) {
  if (!FrozenTreesEnabled()) GTEST_SKIP() << "GORDIAN_FROZEN=0";
  Table t = MakeTable(1500, 71);
  GordianOptions opt;
  const uint64_t fp = TableFingerprint(t);
  TreeArtifactCache cache;

  bool hit = false;
  KeyDiscoveryResult first = ProfileWithTreeCache(t, opt, fp, &cache, &hit);
  EXPECT_FALSE(hit);
  EXPECT_TRUE(first.stats.frozen_traversal_used);
  EXPECT_GT(first.stats.freeze_seconds, 0.0);
  // The miss admitted the run's own frozen artifact; Insert refroze nothing.
  TreeArtifactCache::Stats cs = cache.GetStats();
  EXPECT_EQ(cs.trees_frozen, 0);
  EXPECT_GT(cs.frozen_bytes, 0);

  KeyDiscoveryResult second = ProfileWithTreeCache(t, opt, fp, &cache, &hit);
  EXPECT_TRUE(hit);
  EXPECT_TRUE(second.stats.frozen_traversal_used);
  // A hit pays neither build nor freeze: the prefrozen twin was injected.
  EXPECT_EQ(second.stats.freeze_seconds, 0.0);
  ExpectSameReport(t, first, second);

  // Inserting a raw tree (no artifact handed over) makes the cache freeze
  // it so later hits are still served frozen.
  std::vector<int> order(static_cast<size_t>(t.num_columns()));
  std::iota(order.begin(), order.end(), 0);
  auto raw = std::make_unique<PrefixTree>(
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted));
  TreeCacheKey other_key = MakeTreeCacheKey(fp + 1, t.num_columns(), opt);
  TreeArtifactCache::Lease lease = cache.Insert(other_key, std::move(raw));
  EXPECT_NE(lease.frozen(), nullptr);
  EXPECT_EQ(cache.GetStats().trees_frozen, 1);
  EXPECT_GT(cache.GetStats().freeze_seconds, 0.0);
}

// Regression for the cell_count data race: the memo used to be a plain
// mutable int64_t written on first call, racing when TreeArtifactCache
// served one tree to back-to-back runs probed from several threads. Build
// now fills the memo eagerly and the fallback publishes through an atomic;
// under TSan this test is the proof.
TEST(PrefixTreeTest, ConcurrentCellCountReadsAreRaceFree) {
  Table t = MakeTable(2000, 73);
  std::vector<int> order(static_cast<size_t>(t.num_columns()));
  std::iota(order.begin(), order.end(), 0);
  PrefixTree tree =
      PrefixTree::Build(t, order, GordianOptions::TreeBuild::kSorted);
  const int64_t expected = tree.cell_count();

  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int k = 0; k < 1000; ++k) {
        if (tree.cell_count() != expected) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace gordian
