// Tests for the schema-wide discovery layer: SchemaProfiler ground-truth
// recovery over the multi-table generators, schema_report.json persistence
// (including the injected-fault path), ranked FD discovery, the SQL NULL
// semantics of foreign-key coverage, and the schema-wide advisor overload.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/attribute_set.h"
#include "common/fault_fs.h"
#include "core/fd.h"
#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/baseball_like.h"
#include "datagen/tpch_lite.h"
#include "engine/advisor.h"
#include "engine/row_store.h"
#include "service/profiling_service.h"
#include "service/schema_profiler.h"
#include "table/table.h"

namespace gordian {
namespace {

std::vector<std::pair<std::string, const Table*>> Views(
    const std::vector<NamedTable>& db) {
  std::vector<std::pair<std::string, const Table*>> tables;
  for (const NamedTable& nt : db) tables.emplace_back(nt.name, &nt.table);
  return tables;
}

// Name-based match between a report candidate and a ground-truth FK.
bool Matches(const SchemaReport& report, const ForeignKeyCandidate& fk,
             const SchemaGroundTruthFk& truth) {
  const SchemaReport::TableEntry& from = report.tables[fk.referencing_table];
  const SchemaReport::TableEntry& to = report.tables[fk.referenced_table];
  if (from.name != truth.referencing_table) return false;
  if (to.name != truth.referenced_table) return false;
  if (fk.foreign_key_columns.size() != truth.foreign_key_columns.size()) {
    return false;
  }
  std::vector<int> kcols;
  fk.referenced_key.ForEach([&](int a) { kcols.push_back(a); });
  if (kcols.size() != truth.referenced_key_columns.size()) return false;
  for (size_t i = 0; i < kcols.size(); ++i) {
    if (from.table->schema().name(fk.foreign_key_columns[i]) !=
        truth.foreign_key_columns[i]) {
      return false;
    }
    if (to.table->schema().name(kcols[i]) != truth.referenced_key_columns[i]) {
      return false;
    }
  }
  return true;
}

int RecoveredCount(const SchemaReport& report,
                   const std::vector<SchemaGroundTruthFk>& truth) {
  int found = 0;
  for (const SchemaGroundTruthFk& t : truth) {
    for (const ForeignKeyCandidate& fk : report.foreign_keys) {
      if (Matches(report, fk, t)) {
        ++found;
        break;
      }
    }
  }
  return found;
}

// Permissive FK thresholds for the small test-sized generator scales (the
// bench uses larger data and stricter defaults).
SchemaProfileOptions PermissiveOptions() {
  SchemaProfileOptions options;
  options.fk.min_distinct_values = 2;
  options.fk.min_referenced_coverage = 0.0;
  options.fk.max_arity = 1;
  return options;
}

TEST(SchemaProfiler, RecoversTpchLiteForeignKeys) {
  std::vector<NamedTable> db = GenerateTpchLite(/*scale=*/0.005, /*seed=*/31);
  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaReport report;
  Status s = profiler.Profile(Views(db), PermissiveOptions(), &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(report.tables.size(), db.size());

  const std::vector<SchemaGroundTruthFk> truth = TpchLiteForeignKeys();
  EXPECT_EQ(RecoveredCount(report, truth), static_cast<int>(truth.size()));
  // The report is sorted by the documented total order.
  for (size_t i = 1; i < report.foreign_keys.size(); ++i) {
    EXPECT_FALSE(ForeignKeyCandidateLess(report.foreign_keys[i],
                                         report.foreign_keys[i - 1]));
  }
}

TEST(SchemaProfiler, RecoversBaseballLikeForeignKeys) {
  std::vector<NamedTable> db = GenerateBaseballLike(/*scale=*/0.1, /*seed=*/77);
  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaReport report;
  Status s = profiler.Profile(Views(db), PermissiveOptions(), &report);
  ASSERT_TRUE(s.ok()) << s.ToString();

  const std::vector<SchemaGroundTruthFk> truth = BaseballLikeForeignKeys();
  EXPECT_EQ(RecoveredCount(report, truth), static_cast<int>(truth.size()));
}

TEST(SchemaProfiler, PersistsReportNextToCatalog) {
  std::vector<NamedTable> db = GenerateTpchLite(/*scale=*/0.002, /*seed=*/31);
  const std::string dir = ::testing::TempDir() + "gordian_schema_report";
  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaProfileOptions options = PermissiveOptions();
  options.report_dir = dir;
  SchemaReport report;
  Status s = profiler.Profile(Views(db), options, &report);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_FALSE(report.report_path.empty());

  std::string bytes;
  ASSERT_TRUE(DefaultFileSystem()->ReadFile(report.report_path, &bytes).ok());
  EXPECT_EQ(bytes, SchemaReportToJson(report));
  // No stray temp file from the write-rename sequence.
  std::vector<std::string> names;
  ASSERT_TRUE(DefaultFileSystem()->ListDir(dir, &names).ok());
  for (const std::string& name : names) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(SchemaProfiler, PersistenceFaultStillPopulatesReport) {
  std::vector<NamedTable> db = GenerateTpchLite(/*scale=*/0.002, /*seed=*/31);
  const std::string dir = ::testing::TempDir() + "gordian_schema_fault";
  FaultInjectionFs fs(DefaultFileSystem());
  FaultSpec spec;
  spec.op = FsOp::kRename;
  spec.path_substr = "schema_report";
  fs.Arm(spec);

  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaProfileOptions options = PermissiveOptions();
  options.report_dir = dir;
  options.fs = &fs;
  SchemaReport report;
  Status s = profiler.Profile(Views(db), options, &report);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(fs.fired());
  // Discovery results survive the failed write.
  EXPECT_TRUE(report.report_path.empty());
  ASSERT_EQ(report.tables.size(), db.size());
  EXPECT_EQ(RecoveredCount(report, TpchLiteForeignKeys()),
            static_cast<int>(TpchLiteForeignKeys().size()));
}

// A table with a planted FD (team -> league) and no keys at all: every
// column is heavily duplicated and the full attribute set has fewer
// combinations than rows.
Table MakeFdTable() {
  TableBuilder b(Schema(std::vector<std::string>{"team", "league", "noise"}));
  for (int64_t i = 0; i < 300; ++i) {
    int64_t team = i % 10;
    int64_t league = team < 5 ? 0 : 1;
    b.AddRow({Value(team), Value(league), Value(i % 3)});
  }
  return b.Build();
}

TEST(DiscoverFds, FindsPlantedDependency) {
  Table t = MakeFdTable();
  KeyDiscoveryResult result = FindKeys(t);
  EXPECT_TRUE(result.no_keys);

  std::vector<FdCandidate> fds = DiscoverFds(t, result);
  bool found = false;
  for (const FdCandidate& fd : fds) {
    if (fd.lhs == AttributeSet{0} && fd.rhs == 1) {
      found = true;
      EXPECT_EQ(fd.lhs_distinct, 10);
      EXPECT_NEAR(fd.redundancy, 1.0 - 10.0 / 300.0, 1e-12);
    }
    // noise (3 values) cannot determine team (10 values).
    EXPECT_FALSE(fd.lhs == AttributeSet{2} && fd.rhs == 0);
  }
  EXPECT_TRUE(found);

  // Ranked by the documented order, and deterministic across runs.
  for (size_t i = 1; i < fds.size(); ++i) {
    EXPECT_TRUE(FdCandidateLess(fds[i - 1], fds[i]));
  }
  std::vector<FdCandidate> again = DiscoverFds(t, FindKeys(t));
  ASSERT_EQ(again.size(), fds.size());
  for (size_t i = 0; i < fds.size(); ++i) {
    EXPECT_EQ(again[i].lhs, fds[i].lhs);
    EXPECT_EQ(again[i].rhs, fds[i].rhs);
    EXPECT_EQ(again[i].lhs_distinct, fds[i].lhs_distinct);
  }
}

TEST(DiscoverFds, TopKAndVerificationCap) {
  Table t = MakeFdTable();
  KeyDiscoveryResult result = FindKeys(t);

  FdOptions one;
  one.top_k = 1;
  std::vector<FdCandidate> top1 = DiscoverFds(t, result, one);
  ASSERT_EQ(top1.size(), 1u);
  std::vector<FdCandidate> all = DiscoverFds(t, result);
  ASSERT_FALSE(all.empty());
  // top-1 is the head of the full ranking.
  EXPECT_EQ(top1[0].lhs, all[0].lhs);
  EXPECT_EQ(top1[0].rhs, all[0].rhs);

  // Cap of one verification: the first candidate in enumeration order that
  // survives the prunes is ({team}, league), and it verifies true.
  FdOptions capped;
  capped.max_verifications = 1;
  std::vector<FdCandidate> first = DiscoverFds(t, result, capped);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].lhs, AttributeSet{0});
  EXPECT_EQ(first[0].rhs, 1);

  // <= 0 removes the cap entirely.
  FdOptions uncapped;
  uncapped.max_verifications = 0;
  EXPECT_EQ(DiscoverFds(t, result, uncapped).size(), all.size());
}

TEST(DiscoverFds, IncompleteResultYieldsNothing) {
  Table t = MakeFdTable();
  KeyDiscoveryResult result = FindKeys(t);
  result.incomplete = true;
  EXPECT_TRUE(DiscoverFds(t, result).empty());
}

// Satellite (b): SQL FK semantics — referencing tuples with a NULL
// component do not count against coverage. 40 customers; 100 orders of
// which 20 have a NULL customer reference; with `dangling` one more order
// references a customer that does not exist.
struct NullFkFixture {
  Table customers;
  Table orders;
  std::vector<ProfiledTable> tables;
};

NullFkFixture MakeNullFkFixture(bool dangling) {
  NullFkFixture f;
  TableBuilder cb(Schema(std::vector<std::string>{"cust_id", "name"}));
  for (int64_t i = 0; i < 40; ++i) {
    cb.AddRow({Value(i), Value("c" + std::to_string(i))});
  }
  f.customers = cb.Build();

  TableBuilder ob(Schema(std::vector<std::string>{"order_id", "cust_ref"}));
  for (int64_t i = 0; i < 100; ++i) {
    Value ref = i >= 80 ? Value::Null() : Value(i % 40);
    if (dangling && i == 7) ref = Value(static_cast<int64_t>(999));
    ob.AddRow({Value(i), ref});
  }
  f.orders = ob.Build();

  f.tables.push_back(
      {"customers", &f.customers, FindKeys(f.customers).KeySets()});
  f.tables.push_back({"orders", &f.orders, FindKeys(f.orders).KeySets()});
  return f;
}

std::vector<ForeignKeyCandidate> VerifyWithPath(const NullFkFixture& f,
                                                bool dictionary_first,
                                                double min_coverage) {
  ForeignKeyOptions options;
  options.dictionary_first = dictionary_first;
  options.min_distinct_values = 10;
  options.min_coverage = min_coverage;
  return VerifyForeignKeysAgainstKey(f.tables, /*referencing_table=*/1,
                                     /*referenced_table=*/0, AttributeSet{0},
                                     options);
}

TEST(ForeignKeyNullSemantics, NullTuplesExcludedFromDenominator) {
  NullFkFixture f = MakeNullFkFixture(/*dangling=*/false);
  for (bool dict : {true, false}) {
    std::vector<ForeignKeyCandidate> fks = VerifyWithPath(f, dict, 1.0);
    bool found = false;
    for (const ForeignKeyCandidate& fk : fks) {
      if (fk.foreign_key_columns == std::vector<int>{1}) {
        found = true;
        // 40 distinct non-NULL values, all covered. Were the NULL counted,
        // coverage would be 40/41 and strict mode would reject the FK.
        EXPECT_DOUBLE_EQ(fk.coverage, 1.0);
        EXPECT_EQ(fk.distinct_fk_tuples, 40);
      }
    }
    EXPECT_TRUE(found) << (dict ? "dictionary-first" : "legacy");
  }
}

TEST(ForeignKeyNullSemantics, DanglingValueStillCountsBothPaths) {
  NullFkFixture f = MakeNullFkFixture(/*dangling=*/true);
  for (bool dict : {true, false}) {
    std::vector<ForeignKeyCandidate> fks = VerifyWithPath(f, dict, 0.5);
    bool found = false;
    for (const ForeignKeyCandidate& fk : fks) {
      if (fk.foreign_key_columns == std::vector<int>{1}) {
        found = true;
        // 41 distinct non-NULL values (40 genuine + 999), 40 covered.
        EXPECT_DOUBLE_EQ(fk.coverage, 40.0 / 41.0);
        EXPECT_EQ(fk.distinct_fk_tuples, 41);
      }
    }
    EXPECT_TRUE(found) << (dict ? "dictionary-first" : "legacy");
  }
}

TEST(Advisor, SchemaWideOverloadAdvisesEveryTable) {
  std::vector<NamedTable> db = GenerateTpchLite(/*scale=*/0.002, /*seed=*/31);
  ProfilingService service;
  SchemaProfiler profiler(&service);
  SchemaReport report;
  ASSERT_TRUE(profiler.Profile(Views(db), PermissiveOptions(), &report).ok());

  std::vector<std::unique_ptr<RowStore>> owned;
  std::vector<const RowStore*> stores;
  for (const SchemaReport::TableEntry& e : report.tables) {
    owned.push_back(std::make_unique<RowStore>(*e.table));
    stores.push_back(owned.back().get());
  }
  // Drop one store: that table must get an index-less planner.
  stores[1] = nullptr;

  std::vector<Planner> planners = BuildRecommendedIndexes(report, stores);
  ASSERT_EQ(planners.size(), report.tables.size());
  EXPECT_TRUE(planners[1].indexes().empty());
  bool any_indexes = false;
  for (size_t i = 0; i < planners.size(); ++i) {
    if (!planners[i].indexes().empty()) any_indexes = true;
  }
  EXPECT_TRUE(any_indexes);
}

}  // namespace
}  // namespace gordian
