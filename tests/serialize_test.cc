// Tests for binary table persistence: lossless round-trips and graceful
// rejection of corrupt input (including randomized truncation/mutation).

#include "table/serialize.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/random.h"
#include "core/gordian.h"
#include "datagen/opic_like.h"

namespace gordian {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gordian_ser_" + name;
}

Table MixedTable() {
  TableBuilder b(Schema(std::vector<std::string>{"i", "d", "s", "n"}));
  b.AddRow({Value(int64_t{-5}), Value(2.5), Value("alpha"), Value::Null()});
  b.AddRow({Value(int64_t{7}), Value(-0.125), Value(""), Value("x")});
  b.AddRow({Value(int64_t{7}), Value(2.5), Value("quote\"and,comma"),
            Value::Null()});
  return b.Build();
}

void ExpectTablesEqual(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  for (int c = 0; c < a.num_columns(); ++c) {
    EXPECT_EQ(a.schema().name(c), b.schema().name(c));
    for (int64_t r = 0; r < a.num_rows(); ++r) {
      EXPECT_EQ(a.value(r, c), b.value(r, c)) << "row " << r << " col " << c;
    }
  }
}

TEST(Serialize, RoundTripMixedTypes) {
  Table t = MixedTable();
  std::string path = TempPath("mixed.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  Table back;
  ASSERT_TRUE(ReadTableFile(path, &back).ok());
  ExpectTablesEqual(t, back);
}

TEST(Serialize, RoundTripEmptyTable) {
  TableBuilder b(Schema(std::vector<std::string>{"only"}));
  Table t = b.Build();
  std::string path = TempPath("empty.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  Table back;
  ASSERT_TRUE(ReadTableFile(path, &back).ok());
  EXPECT_EQ(back.num_rows(), 0);
  EXPECT_EQ(back.num_columns(), 1);
}

TEST(Serialize, RoundTripPreservesDiscoveredKeys) {
  Table t = GenerateOpicLike(2000, 12, 31);
  std::string path = TempPath("opic.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  Table back;
  ASSERT_TRUE(ReadTableFile(path, &back).ok());
  auto sorted = [](std::vector<AttributeSet> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(FindKeys(back).KeySets()), sorted(FindKeys(t).KeySets()));
}

TEST(Serialize, RejectsMissingFileAndBadMagic) {
  Table t;
  EXPECT_EQ(ReadTableFile("/no/such.grdt", &t).code(),
            Status::Code::kIOError);
  std::string path = TempPath("bad.grdt");
  {
    std::ofstream os(path, std::ios::binary);
    os << "NOPE the rest does not matter";
  }
  EXPECT_EQ(ReadTableFile(path, &t).code(), Status::Code::kInvalidArgument);
}

TEST(Serialize, RejectsTruncationAtEveryPrefix) {
  Table t = MixedTable();
  std::string path = TempPath("full.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string bytes = buffer.str();
  ASSERT_GT(bytes.size(), 16u);

  // Every strict prefix must fail cleanly (never crash, never succeed).
  for (size_t len : {size_t{0}, size_t{3}, size_t{4}, size_t{9},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::string trunc_path = TempPath("trunc.grdt");
    {
      std::ofstream os(trunc_path, std::ios::binary);
      os.write(bytes.data(), static_cast<std::streamsize>(len));
    }
    Table out;
    EXPECT_FALSE(ReadTableFile(trunc_path, &out).ok()) << "prefix " << len;
  }
}

TEST(Serialize, SurvivesRandomByteMutations) {
  // Fuzz-ish: flip bytes at random positions; the reader must either reject
  // the file or produce *some* table — it must never crash or hand out
  // out-of-range codes.
  Table t = GenerateOpicLike(300, 8, 32);
  std::string path = TempPath("mut_base.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  std::ifstream is(path, std::ios::binary);
  std::stringstream buffer;
  buffer << is.rdbuf();
  std::string base = buffer.str();

  Random rng(77);
  for (int trial = 0; trial < 60; ++trial) {
    std::string mutated = base;
    int flips = 1 + static_cast<int>(rng.Uniform(4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(rng.Uniform(mutated.size()));
      mutated[pos] = static_cast<char>(rng.Next() & 0xFF);
    }
    std::string mpath = TempPath("mut.grdt");
    {
      std::ofstream os(mpath, std::ios::binary);
      os.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    }
    Table out;
    Status s = ReadTableFile(mpath, &out);
    if (s.ok()) {
      // Whatever loaded must be internally consistent.
      for (int c = 0; c < out.num_columns(); ++c) {
        for (int64_t r = 0; r < out.num_rows(); ++r) {
          (void)out.value(r, c);  // must not crash / index out of range
        }
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace gordian
