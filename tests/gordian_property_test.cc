// A second property suite complementing gordian_equivalence_test: richer
// data shapes (strings, NULLs, exact and noisy functional dependencies,
// mixed cardinalities) and the null-semantics option, all checked against
// brute-force oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "bruteforce/brute_force.h"
#include "common/random.h"
#include "core/gordian.h"
#include "table/table.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

struct RichCase {
  int rows;
  int cols;
  double null_rate;    // probability a value is NULL
  double string_rate;  // fraction of columns rendered as strings
  int fd_pairs;        // exact FDs planted (col 2k -> col 2k+1)
  double skew;         // frequency skew for value ranks
  uint64_t seed;

  std::string Name() const {
    return "r" + std::to_string(rows) + "_c" + std::to_string(cols) + "_n" +
           std::to_string(static_cast<int>(null_rate * 100)) + "_s" +
           std::to_string(static_cast<int>(string_rate * 100)) + "_f" +
           std::to_string(fd_pairs) + "_k" +
           std::to_string(static_cast<int>(skew * 10)) + "_x" +
           std::to_string(seed);
  }
};

// Hand-rolled generator (independent of src/datagen, so the sweep does not
// share bugs with the library's own generator).
Table MakeRichTable(const RichCase& c) {
  std::vector<std::string> names;
  for (int i = 0; i < c.cols; ++i) names.push_back("c" + std::to_string(i));
  TableBuilder b{Schema(names)};
  Random rng(c.seed);

  // Cardinality per column: alternate small and large.
  std::vector<uint64_t> card(c.cols);
  for (int i = 0; i < c.cols; ++i) {
    card[i] = (i % 3 == 0) ? 4 + rng.Uniform(8) : 16 + rng.Uniform(64);
  }

  std::vector<Value> row(c.cols);
  std::vector<uint64_t> ranks(c.cols);
  for (int r = 0; r < c.rows; ++r) {
    for (int i = 0; i < c.cols; ++i) {
      // Skewed rank draw: square a uniform to favor low ranks.
      double u = rng.NextDouble();
      double skewed = c.skew > 0 ? std::pow(u, 1.0 + c.skew * 3) : u;
      ranks[i] = static_cast<uint64_t>(skewed * static_cast<double>(card[i]));
      if (ranks[i] >= card[i]) ranks[i] = card[i] - 1;
    }
    // Exact FDs: col 2k+1 := f(col 2k).
    for (int f = 0; f < c.fd_pairs && 2 * f + 1 < c.cols; ++f) {
      ranks[2 * f + 1] = (ranks[2 * f] * 2654435761ULL) % card[2 * f + 1];
    }
    for (int i = 0; i < c.cols; ++i) {
      if (rng.Bernoulli(c.null_rate)) {
        row[i] = Value::Null();
      } else if (static_cast<double>(i) <
                 c.string_rate * static_cast<double>(c.cols)) {
        row[i] = Value("v" + std::to_string(ranks[i]));
      } else {
        row[i] = Value(static_cast<int64_t>(ranks[i]));
      }
    }
    b.AddRow(row);
  }
  return b.Build();
}

class RichProperty : public ::testing::TestWithParam<RichCase> {};

TEST_P(RichProperty, MatchesBruteForceOrReportsNoKeys) {
  Table t = MakeRichTable(GetParam());
  BruteForceResult oracle = BruteForceAll(t);
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_EQ(r.no_keys, oracle.no_keys);
  if (!r.no_keys) {
    EXPECT_EQ(Sorted(r.KeySets()), Sorted(oracle.keys));
  }
  VerificationReport rep = VerifyResult(t, r);
  EXPECT_TRUE(rep.ok) << (rep.problems.empty() ? "" : rep.problems[0]);
}

TEST_P(RichProperty, ExcludeNullableSemanticsMatchesProjectionOracle) {
  Table t = MakeRichTable(GetParam());
  GordianOptions o;
  o.null_semantics = GordianOptions::NullSemantics::kExcludeNullableColumns;
  KeyDiscoveryResult r = FindKeys(t, o);

  // Oracle: project away columns containing NULL, brute-force the rest,
  // remap.
  std::vector<int> kept;
  for (int c = 0; c < t.num_columns(); ++c) {
    bool has_null = false;
    for (int64_t row = 0; row < t.num_rows(); ++row) {
      if (t.value(row, c).is_null()) {
        has_null = true;
        break;
      }
    }
    if (!has_null) kept.push_back(c);
  }
  if (kept.empty()) {
    EXPECT_TRUE(r.keys.empty());
    return;
  }
  Table proj = t.SelectColumns(kept);
  BruteForceResult oracle = BruteForceAll(proj);
  EXPECT_EQ(r.no_keys, oracle.no_keys);
  if (!r.no_keys) {
    std::vector<AttributeSet> remapped;
    for (const AttributeSet& k : oracle.keys) {
      AttributeSet m;
      k.ForEach([&](int a) { m.Set(kept[a]); });
      remapped.push_back(m);
    }
    EXPECT_EQ(Sorted(r.KeySets()), Sorted(remapped));
  }
}

TEST_P(RichProperty, SampledRunsNeverLoseTrueKeys) {
  const RichCase& c = GetParam();
  if (c.rows < 50) return;
  Table t = MakeRichTable(c);
  KeyDiscoveryResult full = FindKeys(t);
  if (full.no_keys) return;
  GordianOptions o;
  o.sample_rows = c.rows / 3;
  o.sample_seed = c.seed ^ 0x5555;
  KeyDiscoveryResult s = FindKeys(t, o);
  if (s.no_keys) return;  // duplicate rows can exist inside the sample only
                          // if they existed in full data (handled above)
  for (const DiscoveredKey& fk : full.keys) {
    bool covered = false;
    for (const DiscoveredKey& sk : s.keys) {
      if (fk.attrs.Covers(sk.attrs)) covered = true;
    }
    EXPECT_TRUE(covered) << "lost " << fk.attrs.ToString();
  }
}

std::vector<RichCase> MakeRichCases() {
  std::vector<RichCase> cases;
  uint64_t seed = 9000;
  for (int rows : {20, 120, 600}) {
    for (int cols : {3, 6, 9}) {
      for (double null_rate : {0.0, 0.08}) {
        for (double string_rate : {0.0, 0.5}) {
          for (int fds : {0, 2}) {
            for (double skew : {0.0, 0.8}) {
              cases.push_back(
                  {rows, cols, null_rate, string_rate, fds, skew, seed += 7});
            }
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RichTables, RichProperty,
                         ::testing::ValuesIn(MakeRichCases()),
                         [](const auto& info) { return info.param.Name(); });

}  // namespace
}  // namespace gordian
