// Dedicated tests for the brute-force baseline (Section 4.2 comparators):
// correctness of the level-synchronous search, arity limits, pruning modes,
// truncation, and instrumentation.

#include "bruteforce/brute_force.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/synthetic.h"

namespace gordian {
namespace {

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> v) {
  std::sort(v.begin(), v.end());
  return v;
}

Table SmallTable() {
  // Keys: {2}; {0,1} (paper-like shape: two columns jointly unique).
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "id", "c"}));
  b.AddRow({Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{1}),
            Value(int64_t{9})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{1}), Value(int64_t{2}),
            Value(int64_t{9})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{0}), Value(int64_t{3}),
            Value(int64_t{9})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{4}),
            Value(int64_t{9})});
  return b.Build();
}

TEST(BruteForce, FindsMinimalKeys) {
  BruteForceResult r = BruteForceAll(SmallTable());
  EXPECT_FALSE(r.no_keys);
  EXPECT_EQ(Sorted(r.keys), Sorted({AttributeSet{2}, AttributeSet{0, 1}}));
}

TEST(BruteForce, SingleAttributeVariantSeesOnlySingletons) {
  BruteForceResult r = BruteForceSingle(SmallTable());
  EXPECT_EQ(Sorted(r.keys), Sorted({AttributeSet{2}}));
  EXPECT_EQ(r.candidates_checked, 4);
}

TEST(BruteForce, ArityLimitExcludesWiderKeys) {
  // Only the 3-column combination is a key; max_arity=2 must find nothing.
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  b.AddRow({Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{0})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{0}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{1}), Value(int64_t{0})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{0}), Value(int64_t{0})});
  Table t = b.Build();
  BruteForceOptions two;
  two.max_arity = 2;
  EXPECT_TRUE(BruteForceFindKeys(t, two).keys.empty());
  EXPECT_EQ(BruteForceAll(t).keys.size(), 1u);
}

TEST(BruteForce, SuperkeyPruningSkipsRedundantCandidates) {
  Table t = SmallTable();
  BruteForceOptions pruned;  // default prune_superkeys = true
  BruteForceResult rp = BruteForceFindKeys(t, pruned);
  BruteForceOptions unpruned;
  unpruned.prune_superkeys = false;
  BruteForceResult ru = BruteForceFindKeys(t, unpruned);
  // Same minimal keys either way; the pruned variant checked fewer
  // candidates and recorded the skips.
  EXPECT_EQ(Sorted(rp.keys), Sorted(ru.keys));
  EXPECT_LT(rp.candidates_checked, ru.candidates_checked);
  EXPECT_GT(rp.candidates_skipped, 0);
  EXPECT_EQ(ru.candidates_skipped, 0);
}

TEST(BruteForce, CandidateCountsMatchCombinatorics) {
  Table t = SmallTable();
  BruteForceOptions o;
  o.prune_superkeys = false;
  o.max_arity = 4;
  BruteForceResult r = BruteForceFindKeys(t, o);
  // C(4,1)+C(4,2)+C(4,3)+C(4,4) = 4+6+4+1 = 15.
  EXPECT_EQ(r.candidates_checked, 15);
}

TEST(BruteForce, DuplicateEntitiesMeanNoKeys) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  b.AddRow({Value(int64_t{1})});
  b.AddRow({Value(int64_t{1})});
  BruteForceResult r = BruteForceAll(b.Build());
  EXPECT_TRUE(r.no_keys);
  EXPECT_TRUE(r.keys.empty());
}

TEST(BruteForce, EmptyAndTrivialTables) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  Table empty = b.Build();
  BruteForceResult r = BruteForceAll(empty);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_FALSE(r.no_keys);

  TableBuilder b1(Schema(std::vector<std::string>{"a", "b"}));
  b1.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  BruteForceResult r1 = BruteForceAll(b1.Build());
  EXPECT_EQ(Sorted(r1.keys), Sorted({AttributeSet{0}, AttributeSet{1}}));
}

TEST(BruteForce, TruncationStopsCleanlyWithoutFalseKeys) {
  SyntheticSpec spec = UniformSpec(20, 5000, 6, 0.5, 41);
  spec.columns[0].cardinality = 128;
  spec.columns[1].cardinality = 64;
  spec.planted_keys.push_back({0, 1});
  Table t;
  ASSERT_TRUE(GenerateSynthetic(spec, &t).ok());
  BruteForceOptions o;
  o.prune_superkeys = false;
  o.time_budget_seconds = 0.05;
  BruteForceResult r = BruteForceFindKeys(t, o);
  EXPECT_TRUE(r.truncated);
  // Whatever keys were confirmed before the cut must be genuine.
  for (const AttributeSet& k : r.keys) {
    EXPECT_TRUE(t.IsUnique(k)) << k.ToString();
  }
}

TEST(BruteForce, MemoryAccountingReleasesEverything) {
  Table t = SmallTable();
  BruteForceResult r = BruteForceAll(t);
  EXPECT_GT(r.peak_memory_bytes, 0);
  // Peak must at least cover one fingerprint per row of the surviving key
  // candidate.
  EXPECT_GE(r.peak_memory_bytes,
            t.num_rows() * static_cast<int64_t>(sizeof(Fingerprint128)));
}

TEST(BruteForce, TimeIsRecorded) {
  BruteForceResult r = BruteForceAll(SmallTable());
  EXPECT_GE(r.seconds, 0.0);
  EXPECT_LT(r.seconds, 10.0);
}

}  // namespace
}  // namespace gordian
