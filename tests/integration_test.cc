// Cross-module integration tests: the full pipeline (generate -> profile ->
// validate -> advise) on the paper's dataset stand-ins, at reduced scale.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "core/foreign_key.h"
#include "core/gordian.h"
#include "datagen/datasets.h"
#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/workload.h"
#include "table/csv.h"
#include "table/fingerprint.h"

namespace gordian {
namespace {

// Every key GORDIAN reports on every table of every dataset must verify
// unique + minimal, and every non-key must verify duplicated.
TEST(Integration, AllDatasetsProfileCleanly) {
  for (const Dataset& d : MakeAllDatasets(/*scale=*/0.02, /*seed=*/501)) {
    for (const NamedTable& nt : d.tables) {
      const Table& t = nt.table;
      KeyDiscoveryResult r = FindKeys(t);
      if (r.no_keys) {
        EXPECT_FALSE(t.IsUnique(AttributeSet::FirstN(t.num_columns())))
            << d.name << "/" << nt.name;
        continue;
      }
      EXPECT_FALSE(r.keys.empty()) << d.name << "/" << nt.name;
      for (const DiscoveredKey& k : r.keys) {
        EXPECT_TRUE(t.IsUnique(k.attrs)) << d.name << "/" << nt.name;
        k.attrs.ForEach([&](int a) {
          AttributeSet smaller = k.attrs;
          smaller.Reset(a);
          if (!smaller.Empty()) {
            EXPECT_FALSE(t.IsUnique(smaller)) << d.name << "/" << nt.name;
          }
        });
      }
      for (const AttributeSet& nk : r.non_keys) {
        EXPECT_FALSE(t.IsUnique(nk)) << d.name << "/" << nt.name;
      }
    }
  }
}

// CSV round-trip preserves the discovered keys (the profiler must behave
// identically on exported/reimported data).
TEST(Integration, CsvRoundTripPreservesKeys) {
  Dataset d = MakeBaseballDataset(/*scale=*/0.02, /*seed=*/502);
  const Table& players = d.tables[0].table;
  std::string path = ::testing::TempDir() + "players_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(players, CsvOptions{}, path).ok());
  Table back;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &back).ok());
  ASSERT_EQ(back.num_rows(), players.num_rows());

  auto sorted = [](std::vector<AttributeSet> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(FindKeys(players).KeySets()),
            sorted(FindKeys(back).KeySets()));
}

// Sampling pipeline on a real-shaped dataset: no true key lost, validated
// strengths sane.
TEST(Integration, SamplingPipelineOnTpch) {
  Dataset d = MakeTpchDataset(/*scale=*/0.1, /*seed=*/503);
  for (const NamedTable& nt : d.tables) {
    const Table& t = nt.table;
    if (t.num_rows() < 1000) continue;
    KeyDiscoveryResult full = FindKeys(t);
    GordianOptions o;
    o.sample_rows = t.num_rows() / 10;
    KeyDiscoveryResult s = FindKeys(t, o);
    ValidateKeys(t, &s);
    for (const DiscoveredKey& fk : full.keys) {
      bool covered = false;
      for (const DiscoveredKey& sk : s.keys) {
        if (fk.attrs.Covers(sk.attrs)) covered = true;
      }
      EXPECT_TRUE(covered) << nt.name << " lost " << fk.attrs.ToString();
    }
    for (const DiscoveredKey& sk : s.keys) {
      EXPECT_GE(sk.exact_strength, 0.0);
      EXPECT_LE(sk.exact_strength, 1.0);
    }
  }
}

// End-to-end Section 4.4: keys -> indexes -> plans agree with scans.
TEST(Integration, AdvisorPipelineOnFactSlice) {
  Dataset d = MakeTpchDataset(/*scale=*/0.05, /*seed=*/504);
  // Find lineitem and profile it.
  const Table* lineitem = nullptr;
  for (const NamedTable& nt : d.tables) {
    if (nt.name == "lineitem") lineitem = &nt.table;
  }
  ASSERT_NE(lineitem, nullptr);
  KeyDiscoveryResult keys = FindKeys(*lineitem);
  ASSERT_FALSE(keys.keys.empty());
  RowStore store(*lineitem);
  Planner planner = BuildRecommendedIndexes(*lineitem, store, keys);
  ASSERT_FALSE(planner.indexes().empty());

  // A point query on the composite key must pick an index and agree with
  // the scan.
  int ok = lineitem->schema().Find("l_orderkey");
  int ln = lineitem->schema().Find("l_linenumber");
  Query q;
  q.label = "point";
  q.predicates = {{ok, lineitem->code(42, ok)}, {ln, lineitem->code(42, ln)}};
  q.projection = {lineitem->schema().Find("l_quantity")};
  PlanChoice plan = planner.Choose(*lineitem, q);
  EXPECT_NE(plan.index, nullptr);
  EXPECT_EQ(ExecuteScan(*lineitem, store, q),
            Execute(*lineitem, store, plan, q));
}

// The whole pipeline again, but ingesting under a spill budget. CI runs this
// leg a second time with GORDIAN_SPILL_BUDGET_MB=64 to prove discovery is
// budget-oblivious at integration scale; the default is a deliberately tiny
// budget so the spill path is exercised on every local run too.
TEST(Integration, CsvIngestUnderSpillBudgetFindsSameKeys) {
  Dataset d = MakeBaseballDataset(/*scale=*/0.02, /*seed=*/506);
  const Table& players = d.tables[0].table;
  std::string dir = ::testing::TempDir() + "spill_leg";
  ASSERT_TRUE(DefaultFileSystem()->CreateDir(dir).ok());
  std::string path = dir + "/players.csv";
  ASSERT_TRUE(WriteCsv(players, CsvOptions{}, path).ok());

  SpillPolicy spill;
  const char* mb = std::getenv("GORDIAN_SPILL_BUDGET_MB");
  spill.memory_budget_bytes =
      mb != nullptr ? std::atoll(mb) * (int64_t{1} << 20) : int64_t{256} << 10;
  spill.spill_dir = dir;
  ASSERT_TRUE(spill.enabled());

  Table resident, spilled;
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, &resident).ok());
  ASSERT_TRUE(ReadCsv(path, CsvOptions{}, spill, &spilled).ok());
  EXPECT_EQ(TableFingerprint(spilled), TableFingerprint(resident));
  // Only assert that spilling happened when the budget is genuinely below
  // the table's resident footprint (the CI 64 MB leg may not need to spill).
  if (spill.memory_budget_bytes < resident.ApproxBytes()) {
    EXPECT_GT(spilled.spilled_column_count(), 0);
  }

  auto sorted = [](std::vector<AttributeSet> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(FindKeys(spilled).KeySets()),
            sorted(FindKeys(resident).KeySets()));
}

// Foreign keys across the TPC-H stand-in: partsupp -> part and -> supplier.
TEST(Integration, ForeignKeysAcrossTpch) {
  auto db = GenerateTpchLite(0.005, 505);
  std::vector<ProfiledTable> tables;
  std::vector<KeyDiscoveryResult> rs(db.size());
  for (size_t i = 0; i < db.size(); ++i) {
    rs[i] = FindKeys(db[i].table);
    tables.push_back({db[i].name, &db[i].table, rs[i].KeySets()});
  }
  ForeignKeyOptions opts;
  opts.min_distinct_values = 20;
  auto fks = DiscoverForeignKeys(tables, opts);
  auto has = [&](const std::string& from, const std::string& fk_col,
                 const std::string& to, const std::string& key_col) {
    for (const ForeignKeyCandidate& c : fks) {
      const Table& ft = *tables[c.referencing_table].table;
      const Table& kt = *tables[c.referenced_table].table;
      if (tables[c.referencing_table].name == from &&
          tables[c.referenced_table].name == to &&
          c.foreign_key_columns.size() == 1 &&
          ft.schema().name(c.foreign_key_columns[0]) == fk_col &&
          c.referenced_key == AttributeSet::Single(kt.schema().Find(key_col))) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("partsupp", "ps_partkey", "part", "p_partkey"));
  EXPECT_TRUE(has("partsupp", "ps_suppkey", "supplier", "s_suppkey"));
  EXPECT_TRUE(has("customer", "c_nationkey", "nation", "n_nationkey"));
}

}  // namespace
}  // namespace gordian
