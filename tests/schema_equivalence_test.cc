// Equivalence fuzz suite for the schema-wide discovery layer. Random
// schemas (random column types, cardinalities, NULL rates, planted
// references) are profiled along independent paths that must agree
// byte-for-byte:
//   - dictionary-first vs legacy value-materializing FK verification;
//   - SchemaProfiler at 1 worker thread vs a full pool;
//   - resident vs spilled (CodeColumn under a tiny budget) base tables.
// Iteration count honours GORDIAN_FUZZ_ITERS (CI's nightly-style leg
// raises it: GORDIAN_FUZZ_ITERS=20 ctest -L schema).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/fault_fs.h"
#include "common/random.h"
#include "core/foreign_key.h"
#include "core/gordian.h"
#include "service/profiling_service.h"
#include "service/schema_profiler.h"
#include "table/table.h"

namespace gordian {
namespace {

int FuzzIters() {
  const char* env = std::getenv("GORDIAN_FUZZ_ITERS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 3;
}

// A random schema: 2-4 tables, each with an id column plus 1-4 payload
// columns of random type/cardinality/NULL rate. Some payload columns are
// planted references into an earlier table's id domain (with a random
// dangling/NULL fraction), so the FK stage has genuine work to do.
// Row counts come from [min_rows, max_rows]: the spill oracle needs tables
// past the builder's 4096-row budget-recheck cadence, the others stay small.
std::vector<Table> RandomSchema(Random* rng, const SpillPolicy& spill,
                                int64_t min_rows = 40,
                                int64_t max_rows = 300) {
  const int num_tables = static_cast<int>(rng->UniformRange(2, 4));
  std::vector<int64_t> id_domain;  // rows of table i == its id domain size
  std::vector<Table> tables;
  for (int t = 0; t < num_tables; ++t) {
    const int64_t rows = rng->UniformRange(min_rows, max_rows);
    id_domain.push_back(rows);
    const int payload = static_cast<int>(rng->UniformRange(1, 4));
    std::vector<std::string> names = {"id"};
    for (int c = 0; c < payload; ++c) {
      names.push_back("p" + std::to_string(c));
    }
    TableBuilder b(Schema(names), spill);

    // Per-column generators, decided up front.
    struct ColPlan {
      int kind;         // 0 int, 1 string, 2 double, 3 reference
      int64_t card;     // value domain
      double null_rate;
      int ref_table;    // kind 3 only
    };
    std::vector<ColPlan> plans;
    for (int c = 0; c < payload; ++c) {
      ColPlan p;
      p.kind = static_cast<int>(rng->UniformRange(0, t > 0 ? 3 : 2));
      p.card = rng->UniformRange(2, 60);
      p.null_rate = rng->Bernoulli(0.4) ? rng->NextDouble() * 0.3 : 0.0;
      p.ref_table = t > 0 ? static_cast<int>(rng->Uniform(t)) : 0;
      plans.push_back(p);
    }

    for (int64_t r = 0; r < rows; ++r) {
      std::vector<Value> row;
      row.push_back(Value(r));  // unique id
      for (const ColPlan& p : plans) {
        Value v;  // NULL unless overwritten below
        if (!rng->Bernoulli(p.null_rate)) {
          switch (p.kind) {
            case 0:
              v = Value(rng->UniformRange(0, p.card - 1));
              break;
            case 1:
              v = Value("v" + std::to_string(rng->Uniform(p.card)));
              break;
            case 2:
              v = Value(static_cast<double>(rng->Uniform(p.card)));
              break;
            default: {
              // Reference into an earlier table's ids, occasionally dangling.
              int64_t upper = id_domain[p.ref_table];
              v = Value(rng->Bernoulli(0.05)
                            ? upper + rng->UniformRange(1, 50)
                            : rng->UniformRange(0, upper - 1));
              break;
            }
          }
        }
        row.push_back(std::move(v));
      }
      b.AddRow(row);
    }
    tables.push_back(b.Build());
  }
  return tables;
}

std::vector<ProfiledTable> ProfileAll(const std::vector<Table>& tables) {
  std::vector<ProfiledTable> out;
  for (size_t i = 0; i < tables.size(); ++i) {
    out.push_back({"t" + std::to_string(i), &tables[i],
                   FindKeys(tables[i]).KeySets()});
  }
  return out;
}

// Serializer for the byte-equality checks.
std::string CandidatesToString(
    const std::vector<ForeignKeyCandidate>& candidates) {
  std::string out;
  char buf[160];
  for (const ForeignKeyCandidate& fk : candidates) {
    std::string cols;
    for (int c : fk.foreign_key_columns) cols += std::to_string(c) + ",";
    std::snprintf(buf, sizeof(buf), "%d[%s]->%d%s cov=%.12f ref=%.12f n=%lld\n",
                  fk.referencing_table, cols.c_str(), fk.referenced_table,
                  fk.referenced_key.ToString().c_str(), fk.coverage,
                  fk.referenced_coverage,
                  static_cast<long long>(fk.distinct_fk_tuples));
    out += buf;
  }
  return out;
}

// The rendered report minus the wall-clock lines, which legitimately vary.
std::string JsonWithoutTimings(const SchemaReport& report) {
  std::string json = SchemaReportToJson(report);
  std::string out;
  size_t pos = 0;
  while (pos < json.size()) {
    size_t end = json.find('\n', pos);
    if (end == std::string::npos) end = json.size();
    std::string line = json.substr(pos, end - pos);
    if (line.find("_seconds") == std::string::npos) {
      out += line;
      out += '\n';
    }
    pos = end + 1;
  }
  return out;
}

ForeignKeyOptions FuzzFkOptions(Random* rng) {
  ForeignKeyOptions options;
  options.min_distinct_values = rng->UniformRange(1, 10);
  options.min_coverage = rng->Bernoulli(0.5) ? 1.0 : rng->NextDouble();
  options.min_referenced_coverage = rng->Bernoulli(0.5) ? 0.0
                                                        : rng->NextDouble();
  options.max_arity = static_cast<int>(rng->UniformRange(1, 2));
  return options;
}

TEST(SchemaEquivalence, DictionaryFirstMatchesLegacy) {
  const int iters = FuzzIters();
  for (int iter = 0; iter < iters; ++iter) {
    Random rng(0x5eed0001 + iter * 977);
    std::vector<Table> tables = RandomSchema(&rng, SpillPolicy());
    std::vector<ProfiledTable> profiled = ProfileAll(tables);
    ForeignKeyOptions options = FuzzFkOptions(&rng);

    options.dictionary_first = true;
    std::vector<ForeignKeyCandidate> dict =
        DiscoverForeignKeys(profiled, options);
    options.dictionary_first = false;
    std::vector<ForeignKeyCandidate> legacy =
        DiscoverForeignKeys(profiled, options);
    EXPECT_EQ(CandidatesToString(dict), CandidatesToString(legacy))
        << "iter " << iter;
  }
}

TEST(SchemaEquivalence, SerialAndParallelReportsIdentical) {
  const int iters = FuzzIters();
  for (int iter = 0; iter < iters; ++iter) {
    Random rng(0x5eed0002 + iter * 977);
    std::vector<Table> tables = RandomSchema(&rng, SpillPolicy());
    std::vector<std::pair<std::string, const Table*>> views;
    for (size_t i = 0; i < tables.size(); ++i) {
      views.emplace_back("t" + std::to_string(i), &tables[i]);
    }
    SchemaProfileOptions options;
    options.fk = FuzzFkOptions(&rng);

    std::string serial_json, parallel_json;
    {
      ServiceOptions so;
      so.num_threads = 1;
      ProfilingService service(so);
      SchemaReport report;
      ASSERT_TRUE(SchemaProfiler(&service).Profile(views, options, &report)
                      .ok());
      serial_json = JsonWithoutTimings(report);
    }
    {
      ServiceOptions so;
      so.num_threads = 4;
      ProfilingService service(so);
      SchemaReport report;
      ASSERT_TRUE(SchemaProfiler(&service).Profile(views, options, &report)
                      .ok());
      parallel_json = JsonWithoutTimings(report);
    }
    EXPECT_EQ(serial_json, parallel_json) << "iter " << iter;
  }
}

TEST(SchemaEquivalence, ResidentAndSpilledTablesIdentical) {
  const int iters = FuzzIters();
  const std::string dir = ::testing::TempDir() + "gordian_schema_spill";
  ASSERT_TRUE(DefaultFileSystem()->CreateDir(dir).ok());
  for (int iter = 0; iter < iters; ++iter) {
    const uint64_t seed = 0x5eed0003 + iter * 977;
    Random rng_resident(seed);
    std::vector<Table> resident =
        RandomSchema(&rng_resident, SpillPolicy(), 4200, 6000);

    SpillPolicy spill;
    spill.memory_budget_bytes = 1 << 10;  // force everything out
    spill.spill_dir = dir;
    spill.chunk_rows = 512;  // small chunks: boundaries get exercised
    Random rng_spilled(seed);
    std::vector<Table> spilled = RandomSchema(&rng_spilled, spill, 4200, 6000);

    bool any_spilled = false;
    for (const Table& t : spilled) {
      if (t.spilled_column_count() > 0) any_spilled = true;
    }
    EXPECT_TRUE(any_spilled) << "iter " << iter;

    Random rng_opts(seed ^ 0xabcdef);
    ForeignKeyOptions options = FuzzFkOptions(&rng_opts);
    std::vector<ForeignKeyCandidate> a =
        DiscoverForeignKeys(ProfileAll(resident), options);
    std::vector<ForeignKeyCandidate> b =
        DiscoverForeignKeys(ProfileAll(spilled), options);
    EXPECT_EQ(CandidatesToString(a), CandidatesToString(b)) << "iter " << iter;
  }
}

}  // namespace
}  // namespace gordian
