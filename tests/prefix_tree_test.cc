// Unit tests for the prefix tree (Algorithm 2) and node merging
// (Algorithm 3), including the structures of the paper's Figures 6-8 and the
// reference-counting discipline.

#include "core/prefix_tree.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gordian {
namespace {

// The reconstructed Figure 1 dataset (see paper_example_test.cc).
Table PaperDataset() {
  TableBuilder b(Schema(std::vector<std::string>{
      "First Name", "Last Name", "Phone", "Emp No"}));
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{3478}),
            Value(int64_t{10})});
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{6791}),
            Value(int64_t{50})});
  b.AddRow({Value("Michael"), Value("Spencer"), Value(int64_t{5237}),
            Value(int64_t{20})});
  b.AddRow({Value("Sally"), Value("Kwan"), Value(int64_t{3478}),
            Value(int64_t{90})});
  return b.Build();
}

std::vector<int> SchemaOrder(const Table& t) {
  std::vector<int> order(t.num_columns());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  return order;
}

class PrefixTreeModes
    : public ::testing::TestWithParam<GordianOptions::TreeBuild> {};

TEST_P(PrefixTreeModes, PaperTreeHasFigure6Shape) {
  Table t = PaperDataset();
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t), GetParam());

  EXPECT_FALSE(tree.has_duplicate_entities());
  EXPECT_EQ(tree.num_entities(), 4);
  // Figure 6: ten nodes; cells = 2 (root) + 3 (last names) + 4 (phones)
  // + 4 (leaf emp-nos) = 13.
  EXPECT_EQ(tree.node_count(), 10);
  EXPECT_EQ(tree.cell_count(), 13);

  // Root: two cells (Michael, Sally); Michael's subtree carries 3 entities.
  PrefixTree::Node* root = tree.root();
  ASSERT_EQ(root->cells.size(), 2u);
  EXPECT_EQ(root->EntityCount(), 4);
  int64_t c0 = root->cells[0].count, c1 = root->cells[1].count;
  EXPECT_TRUE((c0 == 3 && c1 == 1) || (c0 == 1 && c1 == 3));
}

TEST_P(PrefixTreeModes, LeafCountsAreEntityMultiplicities) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value(int64_t{1}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  Table t = b.Build();
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t), GetParam());
  EXPECT_TRUE(tree.has_duplicate_entities());
  ASSERT_EQ(tree.root()->cells.size(), 1u);
  EXPECT_EQ(tree.root()->cells[0].count, 3);
  PrefixTree::Node* leaf = tree.root()->cells[0].child;
  ASSERT_TRUE(leaf->is_leaf);
  ASSERT_EQ(leaf->cells.size(), 2u);
  EXPECT_EQ(leaf->cells[0].count + leaf->cells[1].count, 3);
}

TEST_P(PrefixTreeModes, SingleAttributeTableRootIsLeaf) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  b.AddRow({Value(int64_t{5})});
  b.AddRow({Value(int64_t{6})});
  Table t = b.Build();
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t), GetParam());
  EXPECT_TRUE(tree.root()->is_leaf);
  EXPECT_EQ(tree.root()->cells.size(), 2u);
  EXPECT_FALSE(tree.has_duplicate_entities());
}

TEST_P(PrefixTreeModes, CellsAreSortedByCode) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  for (int i : {5, 3, 9, 1, 7}) {
    b.AddRow({Value(int64_t{i}), Value(int64_t{i * 10})});
  }
  Table t = b.Build();
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t), GetParam());
  const auto& cells = tree.root()->cells;
  for (size_t i = 1; i < cells.size(); ++i) {
    EXPECT_LT(cells[i - 1].code, cells[i].code);
  }
}

TEST_P(PrefixTreeModes, RespectsAttributeOrderPermutation) {
  TableBuilder b(Schema(std::vector<std::string>{"low", "high"}));
  for (int i = 0; i < 8; ++i) {
    b.AddRow({Value(int64_t{i % 2}), Value(int64_t{i})});
  }
  Table t = b.Build();
  // Root level = column 1 (high cardinality): 8 root cells.
  PrefixTree tree = PrefixTree::Build(t, {1, 0}, GetParam());
  EXPECT_EQ(tree.root()->cells.size(), 8u);
  EXPECT_EQ(tree.attribute_at_level(0), 1);
  EXPECT_EQ(tree.attribute_at_level(1), 0);
}

INSTANTIATE_TEST_SUITE_P(BuildModes, PrefixTreeModes,
                         ::testing::Values(GordianOptions::TreeBuild::kSorted,
                                           GordianOptions::TreeBuild::kInsertion),
                         [](const auto& info) {
                           return info.param == GordianOptions::TreeBuild::kSorted
                                      ? "Sorted"
                                      : "Insertion";
                         });

TEST(PrefixTree, SortedAndInsertionBuildsAreStructurallyIdentical) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  for (int i = 0; i < 200; ++i) {
    b.AddRow({Value(int64_t{i % 7}), Value(int64_t{(i * 13) % 11}),
              Value(int64_t{i})});
  }
  Table t = b.Build();
  PrefixTree sorted =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kSorted);
  PrefixTree inserted =
      PrefixTree::Build(t, {0, 1, 2}, GordianOptions::TreeBuild::kInsertion);
  EXPECT_EQ(sorted.node_count(), inserted.node_count());
  EXPECT_EQ(sorted.cell_count(), inserted.cell_count());

  // Deep structural comparison.
  struct Cmp {
    static void Compare(const PrefixTree::Node* a, const PrefixTree::Node* b) {
      ASSERT_EQ(a->is_leaf, b->is_leaf);
      ASSERT_EQ(a->cells.size(), b->cells.size());
      for (size_t i = 0; i < a->cells.size(); ++i) {
        EXPECT_EQ(a->cells[i].code, b->cells[i].code);
        EXPECT_EQ(a->cells[i].count, b->cells[i].count);
        if (!a->is_leaf) Compare(a->cells[i].child, b->cells[i].child);
      }
    }
  };
  Cmp::Compare(sorted.root(), inserted.root());
}

TEST(PrefixTree, MergeOfSingleNodeSharesIt) {
  Table t = PaperDataset();
  PrefixTree tree =
      PrefixTree::Build(t, SchemaOrder(t), GordianOptions::TreeBuild::kSorted);
  PrefixTree::Node* child = tree.root()->cells[0].child;
  EXPECT_EQ(child->ref_count, 1);
  PrefixTree::Node* merged = MergeNodes(tree.pool(), {child}, nullptr);
  EXPECT_EQ(merged, child);
  EXPECT_EQ(child->ref_count, 2);
  tree.pool().Unref(merged);
  EXPECT_EQ(child->ref_count, 1);
}

TEST(PrefixTree, MergeSumsLeafCountsAndUnionsValues) {
  // Two leaves {1:1, 2:1} and {2:1, 3:1} merge to {1:1, 2:2, 3:1}.
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value(int64_t{0}), Value(int64_t{1})});
  b.AddRow({Value(int64_t{0}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{3})});
  Table t = b.Build();
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1}, GordianOptions::TreeBuild::kSorted);
  std::vector<PrefixTree::Node*> children = {tree.root()->cells[0].child,
                                             tree.root()->cells[1].child};
  GordianStats stats;
  PrefixTree::Node* merged = MergeNodes(tree.pool(), children, &stats);
  ASSERT_TRUE(merged->is_leaf);
  ASSERT_EQ(merged->cells.size(), 3u);
  EXPECT_EQ(merged->cells[0].count, 1);
  EXPECT_EQ(merged->cells[1].count, 2);
  EXPECT_EQ(merged->cells[2].count, 1);
  EXPECT_EQ(stats.merges_performed, 1);
  EXPECT_EQ(stats.merge_nodes_created, 1);
  tree.pool().Unref(merged);
}

TEST(PrefixTree, MergeRecursesAndSharesSubtrees) {
  Table t = PaperDataset();
  PrefixTree tree =
      PrefixTree::Build(t, SchemaOrder(t), GordianOptions::TreeBuild::kSorted);
  // Merge the two children of the root (the "Michael" and "Sally" last-name
  // nodes) — this is the Figure 8(d) merge: the result must reference the
  // existing level-2 nodes rather than copy them.
  std::vector<PrefixTree::Node*> children = {tree.root()->cells[0].child,
                                             tree.root()->cells[1].child};
  int64_t nodes_before = tree.pool().live_nodes();
  PrefixTree::Node* merged = MergeNodes(tree.pool(), children, nullptr);
  ASSERT_EQ(merged->cells.size(), 3u);  // Thompson, Spencer, Kwan
  // Only one new node was allocated (the merged level-1 node): its children
  // are shared.
  EXPECT_EQ(tree.pool().live_nodes(), nodes_before + 1);
  for (const PrefixTree::Cell& c : merged->cells) {
    EXPECT_GE(c.child->ref_count, 2);
  }
  tree.pool().Unref(merged);
  EXPECT_EQ(tree.pool().live_nodes(), nodes_before);
}

TEST(PrefixTree, UnrefReleasesAllMemory) {
  Table t = PaperDataset();
  int64_t nodes;
  {
    PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t),
                                        GordianOptions::TreeBuild::kSorted);
    nodes = tree.pool().live_nodes();
    EXPECT_GT(nodes, 0);
    EXPECT_GT(tree.pool().current_bytes(), 0);
    // Destructor unrefs the root; pool is owned by the tree so we observe
    // through peak vs current before destruction.
    EXPECT_LE(tree.pool().current_bytes(), tree.pool().peak_bytes());
  }
  SUCCEED();
}

TEST(PrefixTree, MoveTransfersOwnership) {
  Table t = PaperDataset();
  PrefixTree a = PrefixTree::Build(t, SchemaOrder(t),
                                   GordianOptions::TreeBuild::kSorted);
  PrefixTree b = std::move(a);
  EXPECT_NE(b.root(), nullptr);
  EXPECT_EQ(b.num_entities(), 4);
}

TEST(PrefixTree, EmptyTableYieldsEmptyRoot) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  Table t = b.Build();
  PrefixTree tree =
      PrefixTree::Build(t, {0, 1}, GordianOptions::TreeBuild::kSorted);
  EXPECT_EQ(tree.root()->cells.size(), 0u);
  EXPECT_EQ(tree.num_entities(), 0);
  EXPECT_FALSE(tree.has_duplicate_entities());
}

}  // namespace
}  // namespace gordian
