// Tests for the minimal XML document-collection reader and its end-to-end
// use with GORDIAN.

#include "table/xml_lite.h"

#include <gtest/gtest.h>

#include <fstream>

#include "core/gordian.h"

namespace gordian {
namespace {

Status Parse(const std::string& xml, std::vector<Record>* out) {
  return ParseXmlCollection(xml, out);
}

const Value* Field(const Record& r, const std::string& path) {
  for (const auto& [p, v] : r) {
    if (p == path) return &v;
  }
  return nullptr;
}

TEST(XmlLite, ParsesFlatEntities) {
  std::vector<Record> records;
  ASSERT_TRUE(Parse("<db><emp><id>1</id><name>Ada</name></emp>"
                    "<emp><id>2</id><name>Bob</name></emp></db>",
                    &records)
                  .ok());
  ASSERT_EQ(records.size(), 2u);
  ASSERT_NE(Field(records[0], "id"), nullptr);
  EXPECT_EQ(*Field(records[0], "id"), Value(int64_t{1}));
  EXPECT_EQ(*Field(records[1], "name"), Value("Bob"));
}

TEST(XmlLite, NestedElementsBecomeSlashPaths) {
  std::vector<Record> records;
  ASSERT_TRUE(Parse("<db><p><addr><city>Zurich</city><zip>8001</zip></addr>"
                    "</p></db>",
                    &records)
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(*Field(records[0], "addr/city"), Value("Zurich"));
  EXPECT_EQ(*Field(records[0], "addr/zip"), Value(int64_t{8001}));
}

TEST(XmlLite, AttributesBecomeAtFields) {
  std::vector<Record> records;
  ASSERT_TRUE(Parse("<db><p id=\"7\" kind='x'><tag code=\"z\">t</tag></p></db>",
                    &records)
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(*Field(records[0], "@id"), Value(int64_t{7}));
  EXPECT_EQ(*Field(records[0], "@kind"), Value("x"));
  EXPECT_EQ(*Field(records[0], "tag/@code"), Value("z"));
  EXPECT_EQ(*Field(records[0], "tag"), Value("t"));
}

TEST(XmlLite, DecodesEntitiesAndSkipsCommentsAndProlog) {
  std::vector<Record> records;
  ASSERT_TRUE(Parse("<?xml version='1.0'?><!-- a comment -->\n"
                    "<db><p><t>a &lt;b&gt; &amp; &quot;c&quot; &#65;</t></p>"
                    "<!-- between --></db>",
                    &records)
                  .ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(*Field(records[0], "t"), Value("a <b> & \"c\" A"));
}

TEST(XmlLite, EmptyLeafIsNullAndSelfClosingEntityWithAttrsWorks) {
  std::vector<Record> records;
  ASSERT_TRUE(
      Parse("<db><p><opt></opt><x>1</x></p><p id='9'/></db>", &records).ok());
  ASSERT_EQ(records.size(), 2u);
  ASSERT_NE(Field(records[0], "opt"), nullptr);
  EXPECT_TRUE(Field(records[0], "opt")->is_null());
  EXPECT_EQ(*Field(records[1], "@id"), Value(int64_t{9}));
}

TEST(XmlLite, RejectsMalformedInput) {
  std::vector<Record> r;
  EXPECT_FALSE(Parse("", &r).ok());
  EXPECT_FALSE(Parse("<db><p><a>1</b></p></db>", &r).ok());  // mismatch
  EXPECT_FALSE(Parse("<db><p><a>1</a>", &r).ok());           // unterminated
  EXPECT_FALSE(Parse("<db><p><a>&bogus;</a></p></db>", &r).ok());
  EXPECT_FALSE(Parse("<db><p><a>1</a><a>2</a></p></db>", &r).ok());  // repeat
  EXPECT_FALSE(Parse("<db><p attr=unquoted></p></db>", &r).ok());
  EXPECT_FALSE(Parse("<!-- never closed", &r).ok());
}

TEST(XmlLite, RejectsMixedContent) {
  std::vector<Record> r;
  EXPECT_FALSE(
      Parse("<db><p><a>text<b>1</b></a></p></db>", &r).ok());
}

TEST(XmlLite, ReadXmlCollectionEndToEndKeyDiscovery) {
  // Entities with @id unique and (author, title) a composite key.
  std::string path = ::testing::TempDir() + "gordian_docs.xml";
  {
    std::ofstream os(path);
    os << "<library>\n";
    const char* authors[] = {"kim", "lee", "kim", "lee"};
    const char* titles[] = {"t1", "t1", "t2", "t2"};
    for (int i = 0; i < 4; ++i) {
      os << "  <book id='" << 100 + i << "'><author>" << authors[i]
         << "</author><title>" << titles[i] << "</title></book>\n";
    }
    os << "</library>\n";
  }
  Table t;
  ASSERT_TRUE(ReadXmlCollection(path, &t).ok());
  EXPECT_EQ(t.num_rows(), 4);
  ASSERT_EQ(t.num_columns(), 3);  // @id, author, title

  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_FALSE(r.no_keys);
  int id = t.schema().Find("@id");
  int author = t.schema().Find("author");
  int title = t.schema().Find("title");
  std::vector<AttributeSet> keys = r.KeySets();
  EXPECT_NE(std::find(keys.begin(), keys.end(), AttributeSet::Single(id)),
            keys.end());
  AttributeSet composite;
  composite.Set(author);
  composite.Set(title);
  EXPECT_NE(std::find(keys.begin(), keys.end(), composite), keys.end());
}

TEST(XmlLite, MissingFileAndEmptyCollection) {
  Table t;
  EXPECT_EQ(ReadXmlCollection("/no/such.xml", &t).code(),
            Status::Code::kIOError);
  std::string path = ::testing::TempDir() + "gordian_empty.xml";
  {
    std::ofstream os(path);
    os << "<db></db>";
  }
  EXPECT_FALSE(ReadXmlCollection(path, &t).ok());
}

}  // namespace
}  // namespace gordian
