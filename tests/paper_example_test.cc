// End-to-end checks against the paper's running example (Figure 1 and the
// worked NonKeyFinder trace of Section 3.5).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bruteforce/brute_force.h"
#include "core/gordian.h"
#include "table/table.h"

namespace gordian {
namespace {

// The four-employee dataset of Figure 1. Column positions:
// 0 = First Name, 1 = Last Name, 2 = Phone, 3 = Emp No.
Table PaperDataset() {
  TableBuilder b(Schema(std::vector<std::string>{
      "First Name", "Last Name", "Phone", "Emp No"}));
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{3478}),
            Value(int64_t{10})});
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{6791}),
            Value(int64_t{50})});
  b.AddRow({Value("Michael"), Value("Spencer"), Value(int64_t{5237}),
            Value(int64_t{20})});
  b.AddRow({Value("Sally"), Value("Kwan"), Value(int64_t{3478}),
            Value(int64_t{90})});
  return b.Build();
}

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> sets) {
  std::sort(sets.begin(), sets.end());
  return sets;
}

TEST(PaperExample, FindsExactlyTheThreeMinimalKeys) {
  Table t = PaperDataset();
  // Keep the paper's schema order so the trace matches Section 3.5.
  GordianOptions opts;
  opts.attribute_order = GordianOptions::AttributeOrder::kSchema;
  KeyDiscoveryResult r = FindKeys(t, opts);

  ASSERT_FALSE(r.no_keys);
  // Section 3.7: keys are <EmpNo>, <First Name, Phone>, <Last Name, Phone>.
  std::vector<AttributeSet> expected = {
      AttributeSet{3}, AttributeSet{0, 2}, AttributeSet{1, 2}};
  EXPECT_EQ(Sorted(r.KeySets()), Sorted(expected));
}

TEST(PaperExample, FindsExactlyTheTwoNonRedundantNonKeys) {
  Table t = PaperDataset();
  GordianOptions opts;
  opts.attribute_order = GordianOptions::AttributeOrder::kSchema;
  KeyDiscoveryResult r = FindKeys(t, opts);

  // Section 2: the non-redundant non-keys are <Phone> and
  // <First Name, Last Name>.
  std::vector<AttributeSet> expected = {AttributeSet{2}, AttributeSet{0, 1}};
  EXPECT_EQ(Sorted(r.non_keys), Sorted(expected));
}

TEST(PaperExample, BruteForceAgrees) {
  Table t = PaperDataset();
  BruteForceResult bf = BruteForceAll(t);
  GordianOptions opts;
  opts.attribute_order = GordianOptions::AttributeOrder::kSchema;
  KeyDiscoveryResult r = FindKeys(t, opts);
  EXPECT_EQ(Sorted(bf.keys), Sorted(r.KeySets()));
}

TEST(PaperExample, EveryKeyIsUniqueAndMinimal) {
  Table t = PaperDataset();
  KeyDiscoveryResult r = FindKeys(t);
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_TRUE(t.IsUnique(k.attrs)) << k.attrs.ToString();
    // Minimality: dropping any attribute destroys uniqueness.
    k.attrs.ForEach([&](int a) {
      AttributeSet smaller = k.attrs;
      smaller.Reset(a);
      if (!smaller.Empty()) {
        EXPECT_FALSE(t.IsUnique(smaller)) << smaller.ToString();
      }
    });
  }
}

TEST(PaperExample, ResultIsIndependentOfAttributeOrderAndPruning) {
  Table t = PaperDataset();
  GordianOptions base;
  base.attribute_order = GordianOptions::AttributeOrder::kSchema;
  const auto expected = Sorted(FindKeys(t, base).KeySets());

  for (auto order : {GordianOptions::AttributeOrder::kCardinalityDesc,
                     GordianOptions::AttributeOrder::kCardinalityAsc,
                     GordianOptions::AttributeOrder::kRandom}) {
    for (bool singleton : {false, true}) {
      for (bool futility : {false, true}) {
        for (bool single_entity : {false, true}) {
          GordianOptions o;
          o.attribute_order = order;
          o.order_seed = 7;
          o.singleton_pruning = singleton;
          o.futility_pruning = futility;
          o.single_entity_pruning = single_entity;
          EXPECT_EQ(Sorted(FindKeys(t, o).KeySets()), expected);
        }
      }
    }
  }
}

TEST(PaperExample, DuplicateEntityMeansNoKeys) {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  b.AddRow({Value(int64_t{1}), Value(int64_t{2})});
  Table t = b.Build();
  KeyDiscoveryResult r = FindKeys(t);
  EXPECT_TRUE(r.no_keys);
  EXPECT_TRUE(r.keys.empty());
  EXPECT_TRUE(BruteForceAll(t).no_keys);
}

}  // namespace
}  // namespace gordian
