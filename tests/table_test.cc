// Unit tests for the table substrate: values, dictionaries, builder,
// distinct counting, uniqueness, strength, sampling, projections.

#include "table/table.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "table/dictionary.h"
#include "table/value.h"

namespace gordian {
namespace {

Table SmallTable() {
  TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c"}));
  b.AddRow({Value(int64_t{1}), Value("x"), Value(1.5)});
  b.AddRow({Value(int64_t{1}), Value("y"), Value(2.5)});
  b.AddRow({Value(int64_t{2}), Value("x"), Value(1.5)});
  b.AddRow({Value(int64_t{2}), Value("y"), Value(1.5)});
  return b.Build();
}

TEST(Value, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{42}).int64(), 42);
  EXPECT_DOUBLE_EQ(Value(3.25).dbl(), 3.25);
  EXPECT_EQ(Value("hi").str(), "hi");
  EXPECT_EQ(Value(int64_t{42}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.25).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_EQ(Value().type(), ValueType::kNull);
}

TEST(Value, EqualityAndNullSemantics) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value("1"));
  // NULL compares equal to NULL: two all-NULL rows are duplicates.
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("abc").ToString(), "abc");
  EXPECT_EQ(Value::Null().ToString(), "NULL");
}

TEST(Dictionary, EncodeAssignsDenseCodesInFirstSeenOrder) {
  Dictionary d;
  EXPECT_EQ(d.Encode(Value("a")), 0u);
  EXPECT_EQ(d.Encode(Value("b")), 1u);
  EXPECT_EQ(d.Encode(Value("a")), 0u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.Decode(1), Value("b"));
  EXPECT_EQ(d.Lookup(Value("b")), 1u);
  EXPECT_EQ(d.Lookup(Value("zzz")), UINT32_MAX);
}

TEST(Dictionary, MixedTypesCoexist) {
  Dictionary d;
  uint32_t c_int = d.Encode(Value(int64_t{1}));
  uint32_t c_str = d.Encode(Value("1"));
  uint32_t c_null = d.Encode(Value::Null());
  EXPECT_NE(c_int, c_str);
  EXPECT_NE(c_int, c_null);
  EXPECT_EQ(d.size(), 3u);
}

TEST(TableBuilder, BuildsExpectedShape) {
  Table t = SmallTable();
  EXPECT_EQ(t.num_rows(), 4);
  EXPECT_EQ(t.num_columns(), 3);
  EXPECT_EQ(t.schema().name(1), "b");
  EXPECT_EQ(t.value(0, 1), Value("x"));
  EXPECT_EQ(t.value(3, 0), Value(int64_t{2}));
}

TEST(Table, ColumnCardinality) {
  Table t = SmallTable();
  EXPECT_EQ(t.ColumnCardinality(0), 2);
  EXPECT_EQ(t.ColumnCardinality(1), 2);
  EXPECT_EQ(t.ColumnCardinality(2), 2);
}

TEST(Table, DistinctCount) {
  Table t = SmallTable();
  EXPECT_EQ(t.DistinctCount(AttributeSet{0}), 2);
  EXPECT_EQ(t.DistinctCount(AttributeSet{0, 1}), 4);
  EXPECT_EQ(t.DistinctCount(AttributeSet{0, 2}), 3);
  EXPECT_EQ(t.DistinctCount(AttributeSet{0, 1, 2}), 4);
  EXPECT_EQ(t.DistinctCount(AttributeSet{}), 1);
}

TEST(Table, IsUniqueMatchesDistinctCount) {
  Table t = SmallTable();
  EXPECT_TRUE(t.IsUnique(AttributeSet{0, 1}));
  EXPECT_FALSE(t.IsUnique(AttributeSet{0}));
  EXPECT_FALSE(t.IsUnique(AttributeSet{0, 2}));
  EXPECT_FALSE(t.IsUnique(AttributeSet{}));
}

TEST(Table, Strength) {
  Table t = SmallTable();
  EXPECT_DOUBLE_EQ(t.Strength(AttributeSet{0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(t.Strength(AttributeSet{0}), 0.5);
  EXPECT_DOUBLE_EQ(t.Strength(AttributeSet{0, 2}), 0.75);
}

TEST(Table, EmptyTableConventions) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  Table t = b.Build();
  EXPECT_EQ(t.num_rows(), 0);
  EXPECT_EQ(t.DistinctCount(AttributeSet{0}), 0);
  EXPECT_TRUE(t.IsUnique(AttributeSet{0}));
  EXPECT_DOUBLE_EQ(t.Strength(AttributeSet{0}), 1.0);
}

TEST(Table, SampleRowsSharesDictionariesAndPreservesOrder) {
  TableBuilder b(Schema(std::vector<std::string>{"id", "tag"}));
  for (int64_t i = 0; i < 100; ++i) {
    b.AddRow({Value(i), Value("t" + std::to_string(i % 7))});
  }
  Table t = b.Build();
  Table s = t.SampleRows(30, /*seed=*/9);
  EXPECT_EQ(s.num_rows(), 30);
  EXPECT_EQ(s.num_columns(), 2);
  // Shared dictionary: same decoded values for same codes.
  EXPECT_EQ(&s.dictionary(0), &t.dictionary(0));
  // Order preserved: the id column (insertion-ordered codes) is ascending.
  for (int64_t r = 1; r < s.num_rows(); ++r) {
    EXPECT_LT(s.value(r - 1, 0).int64(), s.value(r, 0).int64());
  }
  // Sampling without replacement: all ids distinct.
  EXPECT_EQ(s.DistinctCount(AttributeSet{0}), 30);
}

TEST(Table, SampleRowsClampsAndIsDeterministic) {
  Table t = SmallTable();
  Table s1 = t.SampleRows(1000, 3);
  EXPECT_EQ(s1.num_rows(), 4);
  Table s2 = t.SampleRows(2, 3);
  Table s3 = t.SampleRows(2, 3);
  ASSERT_EQ(s2.num_rows(), 2);
  for (int64_t r = 0; r < 2; ++r) {
    for (int c = 0; c < 3; ++c) EXPECT_EQ(s2.code(r, c), s3.code(r, c));
  }
}

TEST(Table, ProjectAndSelectColumns) {
  Table t = SmallTable();
  Table p = t.ProjectColumns(2);
  EXPECT_EQ(p.num_columns(), 2);
  EXPECT_EQ(p.schema().name(1), "b");
  EXPECT_EQ(p.num_rows(), 4);

  Table sel = t.SelectColumns({2, 0});
  EXPECT_EQ(sel.num_columns(), 2);
  EXPECT_EQ(sel.schema().name(0), "c");
  EXPECT_EQ(sel.value(0, 1), Value(int64_t{1}));
}

TEST(Table, DistinctCountFastAgreesWithSortBased) {
  // Property: the fingerprint-based count equals the exact sort-based count
  // on randomized tables.
  for (uint64_t seed = 0; seed < 5; ++seed) {
    TableBuilder b(Schema(std::vector<std::string>{"a", "b", "c", "d"}));
    uint64_t state = seed * 977 + 13;
    for (int i = 0; i < 500; ++i) {
      auto next = [&state]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<int64_t>(state >> 33);
      };
      b.AddRow({Value(next() % 7), Value(next() % 13), Value(next() % 3),
                Value(next() % 50)});
    }
    Table t = b.Build();
    for (AttributeSet attrs :
         {AttributeSet{0}, AttributeSet{0, 1}, AttributeSet{1, 2, 3},
          AttributeSet{0, 1, 2, 3}, AttributeSet{}}) {
      EXPECT_EQ(t.DistinctCountFast(attrs), t.DistinctCount(attrs))
          << attrs.ToString() << " seed " << seed;
    }
  }
}

TEST(Table, ApproxBytesCountsSharedDictionariesOnce) {
  Table t = SmallTable();
  const int64_t base = t.ApproxBytes();
  EXPECT_GT(base, 0);

  // A full-width sample shares all three dictionaries with the parent; its
  // footprint must price each shared Dictionary once, not once per column
  // and certainly not zero times.
  Table sample = t.SampleRows(t.num_rows(), 1);
  int64_t dict_bytes = 0;
  for (int c = 0; c < t.num_columns(); ++c) {
    dict_bytes += t.dictionary(c).ApproxBytes();
  }
  const int64_t sample_bytes = sample.ApproxBytes();
  EXPECT_GE(sample_bytes, dict_bytes);
  EXPECT_LE(sample_bytes, base + dict_bytes);

  // Two columns backed by one Dictionary object — and, since CodeColumn
  // copies share storage, one code array: the duplicated selection costs
  // the same as the single column, with both the dictionary and the codes
  // priced once.
  Table one = t.SelectColumns({1});
  Table two = t.SelectColumns({1, 1});
  EXPECT_EQ(two.ApproxBytes(), one.ApproxBytes());
  EXPECT_EQ(two.column_codes(0).data(), two.column_codes(1).data());
}

TEST(Table, ApproxBytesIncludesCardinalityCache) {
  Table t = SmallTable();
  const int64_t before = t.ApproxBytes();
  (void)t.ColumnCardinality(0);  // materializes the per-column cache
  const int64_t after = t.ApproxBytes();
  EXPECT_GE(after,
            before + static_cast<int64_t>(t.num_columns() * sizeof(int64_t)));
}

TEST(Table, RowToString) {
  Table t = SmallTable();
  EXPECT_EQ(t.RowToString(0), "1|x|1.500000");
}

TEST(Schema, FindAndDescribe) {
  Schema s(std::vector<std::string>{"x", "y", "z"});
  EXPECT_EQ(s.Find("y"), 1);
  EXPECT_EQ(s.Find("nope"), -1);
  EXPECT_EQ(s.Describe(AttributeSet{0, 2}), "<x, z>");
}

}  // namespace
}  // namespace gordian
