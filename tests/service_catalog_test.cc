// Tests for the table fingerprint and the key catalog's GRDC persistence:
// fingerprint stability/sensitivity, round-trips, and hardening against
// truncated or corrupted catalog files (parser-fuzz style).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "service/key_catalog.h"
#include "table/fingerprint.h"
#include "table/serialize.h"
#include "table/table.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed) {
  SyntheticSpec spec = UniformSpec(5, rows, 32, 0.5, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[2].cardinality = 64;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "gordian_catalog_" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A populated catalog with two entries, one of them sampled.
void FillCatalog(KeyCatalog* catalog, Table* t1, Table* t2) {
  *t1 = MakeTable(400, 11);
  *t2 = MakeTable(700, 12);
  ASSERT_TRUE(catalog->Put(TableFingerprint(*t1), "alpha", t1->num_columns(),
                           FindKeys(*t1)));
  GordianOptions sampled;
  sampled.sample_rows = 200;
  ASSERT_TRUE(catalog->Put(TableFingerprint(*t2), "beta", t2->num_columns(),
                           FindKeys(*t2, sampled)));
}

// ---------------------------------------------------------------- fingerprint

TEST(TableFingerprint, EqualContentGivesEqualFingerprint) {
  Table a = MakeTable(500, 1);
  Table b = MakeTable(500, 1);  // regenerated, same spec and seed
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
}

TEST(TableFingerprint, AnyPerturbationChangesFingerprint) {
  Table base = MakeTable(500, 2);
  const uint64_t fp = TableFingerprint(base);
  EXPECT_NE(fp, TableFingerprint(MakeTable(500, 3)));   // different data
  EXPECT_NE(fp, TableFingerprint(MakeTable(501, 2)));   // one more row

  // Same values, different column name.
  std::vector<std::string> names;
  for (int c = 0; c < base.num_columns(); ++c) {
    names.push_back(base.schema().name(c));
  }
  names[1] += "_renamed";
  TableBuilder renamed{Schema(names)};
  for (int64_t r = 0; r < base.num_rows(); ++r) {
    std::vector<Value> row;
    for (int c = 0; c < base.num_columns(); ++c) {
      row.push_back(base.value(r, c));
    }
    renamed.AddRow(row);
  }
  EXPECT_NE(fp, TableFingerprint(renamed.Build()));
}

TEST(TableFingerprint, StableAcrossSerializeReload) {
  Table t = MakeTable(600, 4);
  std::string path = TempPath("table.grdt");
  ASSERT_TRUE(WriteTableFile(t, path).ok());
  Table reloaded;
  ASSERT_TRUE(ReadTableFile(path, &reloaded).ok());
  EXPECT_EQ(TableFingerprint(t), TableFingerprint(reloaded));
}

// -------------------------------------------------------------- KeyCatalog

TEST(KeyCatalog, PutLookupEraseLifecycle) {
  KeyCatalog catalog;
  Table t = MakeTable(300, 5);
  uint64_t fp = TableFingerprint(t);
  KeyDiscoveryResult result = FindKeys(t);
  EXPECT_FALSE(catalog.Contains(fp));
  EXPECT_TRUE(catalog.Put(fp, "t", t.num_columns(), result));
  EXPECT_EQ(catalog.size(), 1);

  CatalogEntry entry;
  ASSERT_TRUE(catalog.Lookup(fp, &entry));
  EXPECT_EQ(entry.fingerprint, fp);
  EXPECT_EQ(entry.table_name, "t");
  EXPECT_EQ(entry.num_columns, t.num_columns());
  EXPECT_EQ(entry.result.KeySets(), result.KeySets());

  EXPECT_TRUE(catalog.Erase(fp));
  EXPECT_FALSE(catalog.Erase(fp));
  EXPECT_EQ(catalog.size(), 0);
}

TEST(KeyCatalog, RefusesIncompleteResults) {
  KeyCatalog catalog;
  KeyDiscoveryResult incomplete;
  incomplete.incomplete = true;
  incomplete.incomplete_reason = AbortReason::kTimeBudget;
  EXPECT_FALSE(catalog.Put(1, "t", 3, incomplete));
  EXPECT_EQ(catalog.size(), 0);
}

TEST(KeyCatalog, FileRoundTripPreservesEveryEntry) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("roundtrip.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());

  KeyCatalog loaded;
  // Pre-poison the target to prove Read replaces, not merges.
  ASSERT_TRUE(loaded.Put(999, "junk", 2, KeyDiscoveryResult{}));
  ASSERT_TRUE(ReadCatalogFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 2);
  EXPECT_FALSE(loaded.Contains(999));

  for (const Table* t : {&t1, &t2}) {
    CatalogEntry original, reloaded;
    ASSERT_TRUE(catalog.Lookup(TableFingerprint(*t), &original));
    ASSERT_TRUE(loaded.Lookup(TableFingerprint(*t), &reloaded));
    EXPECT_EQ(reloaded.table_name, original.table_name);
    EXPECT_EQ(reloaded.num_columns, original.num_columns);
    EXPECT_EQ(reloaded.result.no_keys, original.result.no_keys);
    EXPECT_EQ(reloaded.result.sampled, original.result.sampled);
    EXPECT_EQ(reloaded.result.stats.rows_processed,
              original.result.stats.rows_processed);
    EXPECT_EQ(reloaded.result.KeySets(), original.result.KeySets());
    EXPECT_EQ(reloaded.result.non_keys, original.result.non_keys);
    ASSERT_EQ(reloaded.result.keys.size(), original.result.keys.size());
    for (size_t i = 0; i < reloaded.result.keys.size(); ++i) {
      EXPECT_DOUBLE_EQ(reloaded.result.keys[i].estimated_strength,
                       original.result.keys[i].estimated_strength);
      EXPECT_DOUBLE_EQ(reloaded.result.keys[i].exact_strength,
                       original.result.keys[i].exact_strength);
    }
  }
}

TEST(KeyCatalog, EmptyCatalogRoundTrips) {
  KeyCatalog catalog;
  std::string path = TempPath("empty.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());
  KeyCatalog loaded;
  ASSERT_TRUE(ReadCatalogFile(path, &loaded).ok());
  EXPECT_EQ(loaded.size(), 0);
}

TEST(KeyCatalog, MissingFileIsIOError) {
  KeyCatalog loaded;
  Status s = ReadCatalogFile("/no/such/dir/c.grdc", &loaded);
  EXPECT_EQ(s.code(), Status::Code::kIOError);
}

TEST(KeyCatalog, BadMagicIsInvalidArgument) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("badmagic.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[0] = 'X';
  WriteFileBytes(path, bytes);
  KeyCatalog loaded;
  Status s = ReadCatalogFile(path, &loaded);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(KeyCatalog, VersionMismatchIsInvalidArgument) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("badversion.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[4] = static_cast<char>(bytes[4] + 1);  // version u32 follows magic
  WriteFileBytes(path, bytes);
  KeyCatalog loaded;
  Status s = ReadCatalogFile(path, &loaded);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_NE(s.ToString().find("version"), std::string::npos);
}

TEST(KeyCatalog, TruncationAtEveryPrefixIsInvalidArgument) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("trunc.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  std::string cut_path = TempPath("trunc_cut.grdc");
  for (size_t len = 0; len < bytes.size(); ++len) {
    WriteFileBytes(cut_path, bytes.substr(0, len));
    KeyCatalog loaded;
    Status s = ReadCatalogFile(cut_path, &loaded);
    EXPECT_FALSE(s.ok()) << "prefix of length " << len << " loaded";
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument) << "length " << len;
  }
}

TEST(KeyCatalog, TrailingGarbageIsRejected) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("trailing.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());

  // Bytes past the declared last entry used to be silently ignored, hiding
  // both tampering and writer bugs; any non-empty tail must now fail.
  const std::string clean = ReadFileBytes(path);
  for (const std::string& tail : {std::string(1, '\0'), std::string("x"),
                                  std::string(64, '\xff')}) {
    WriteFileBytes(path, clean + tail);
    KeyCatalog loaded;
    Status s = ReadCatalogFile(path, &loaded);
    EXPECT_EQ(s.code(), Status::Code::kInvalidArgument)
        << "tail of " << tail.size() << " byte(s) loaded";
    EXPECT_NE(s.ToString().find("trailing"), std::string::npos);
  }
}

TEST(KeyCatalog, RandomByteMutationsNeverCrash) {
  KeyCatalog catalog;
  Table t1, t2;
  FillCatalog(&catalog, &t1, &t2);
  std::string path = TempPath("mut.grdc");
  ASSERT_TRUE(WriteCatalogFile(catalog, path).ok());
  const std::string bytes = ReadFileBytes(path);

  Random rng(601);
  std::string mut_path = TempPath("mut_out.grdc");
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      mutated[rng.Uniform(mutated.size())] =
          static_cast<char>(rng.Next() & 0xFF);
    }
    WriteFileBytes(mut_path, mutated);
    KeyCatalog loaded;
    Status s = ReadCatalogFile(mut_path, &loaded);
    // Whatever loads must be structurally sane; most mutations must fail
    // cleanly. Either way: no crash, no wild allocation.
    if (s.ok()) {
      for (uint64_t fp : loaded.Fingerprints()) {
        CatalogEntry entry;
        ASSERT_TRUE(loaded.Lookup(fp, &entry));
        for (const DiscoveredKey& k : entry.result.keys) {
          k.attrs.ForEach([&](int a) { EXPECT_LT(a, entry.num_columns); });
        }
      }
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace gordian
