// Spilled-vs-resident equivalence: a table whose columns live in GRDL
// files must be observationally identical to the same table fully in
// memory — same fingerprint, same distinct counts, same samples and
// projections, and byte-identical profiling reports. Also covers the
// TableArtifactStore round trip and the service wiring.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/fault_fs.h"
#include "core/gordian.h"
#include "core/report.h"
#include "core/streaming.h"
#include "service/profiling_service.h"
#include "service/table_artifacts.h"
#include "table/csv.h"
#include "table/fingerprint.h"
#include "table/table.h"

namespace gordian {
namespace {

std::string TestDir(const std::string& name) {
  // Per-process suffix: the artifact store is content-addressed, so leftovers
  // from a previous run would turn Puts into no-ops and skew assertions.
  std::string dir = ::testing::TempDir() + "gordian_spill_" + name + "_" +
                    std::to_string(::getpid());
  EXPECT_TRUE(DefaultFileSystem()->CreateDir(dir).ok());
  return dir;
}

uint64_t Next(uint64_t* state) {
  *state = *state * 6364136223846793005ULL + 1442695040888963407ULL;
  return *state >> 33;
}

// A CSV with mixed types, repeated values, and empty (NULL) fields —
// enough structure for keys to exist and for dictionaries to matter.
std::string MakeCsv(const std::string& dir, int64_t rows, uint64_t seed) {
  std::string body = "id,cat,val,note\n";
  uint64_t state = seed * 977 + 13;
  for (int64_t i = 0; i < rows; ++i) {
    body += std::to_string(i);
    body += ",c" + std::to_string(Next(&state) % 23);
    body += "," + std::to_string(static_cast<double>(Next(&state) % 7) / 2);
    if (Next(&state) % 9 == 0) {
      body += ",";  // NULL
    } else {
      body += ",note" + std::to_string(Next(&state) % 101);
    }
    body += "\n";
  }
  std::string path = dir + "/t" + std::to_string(seed) + ".csv";
  EXPECT_TRUE(DefaultFileSystem()->WriteFile(path, body).ok());
  return path;
}

// Profiling report with run-dependent stats zeroed, so equality is
// byte-identical over everything discovery can observe.
std::string CanonicalReport(const Table& t) {
  DatabaseProfile p;
  KeyDiscoveryResult r = FindKeys(t);
  r.stats = GordianStats{};
  p.tables.push_back({"t", &t, std::move(r)});
  return ProfileToJson(p);
}

SpillPolicy Policy(const std::string& dir, int64_t budget) {
  SpillPolicy spill;
  spill.memory_budget_bytes = budget;
  spill.spill_dir = dir;
  spill.chunk_rows = 512;  // small chunks: boundaries get exercised
  return spill;
}

// The core oracle, fuzzed over seeds x budgets: every observable behavior
// of a spilled table matches the resident one.
TEST(SpillEquivalence, CsvIngestMatchesResidentAcrossBudgets) {
  const std::string dir = TestDir("fuzz");
  for (uint64_t seed : {1u, 2u, 3u}) {
    const std::string csv = MakeCsv(dir, 3000, seed);
    Table resident;
    ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, &resident).ok());
    const std::string want_report = CanonicalReport(resident);
    const uint64_t want_fp = TableFingerprint(resident);

    // 1 KB budget spills every column; 64 KB a subset; 1 GB none.
    for (int64_t budget : {int64_t{1} << 10, int64_t{64} << 10,
                           int64_t{1} << 30}) {
      Table spilled;
      ASSERT_TRUE(
          ReadCsv(csv, CsvOptions{}, Policy(dir, budget), &spilled).ok());
      if (budget == (int64_t{1} << 10)) {
        EXPECT_EQ(spilled.spilled_column_count(), spilled.num_columns());
      } else if (budget == (int64_t{1} << 30)) {
        EXPECT_EQ(spilled.spilled_column_count(), 0);
      }

      EXPECT_EQ(TableFingerprint(spilled), want_fp) << "budget " << budget;
      EXPECT_EQ(CanonicalReport(spilled), want_report) << "budget " << budget;

      // The full distinct-count family over assorted projections.
      for (AttributeSet attrs :
           {AttributeSet{0}, AttributeSet{1}, AttributeSet{1, 2},
            AttributeSet{0, 3}, AttributeSet{1, 2, 3},
            AttributeSet{0, 1, 2, 3}}) {
        EXPECT_EQ(spilled.DistinctCount(attrs), resident.DistinctCount(attrs));
        EXPECT_EQ(spilled.DistinctCountFast(attrs),
                  resident.DistinctCountFast(attrs));
        EXPECT_EQ(spilled.IsUnique(attrs), resident.IsUnique(attrs));
      }

      // Views over a spilled table: same rows, same codes, no copy of the
      // underlying storage.
      Table sample_r = resident.SampleRows(500, 9);
      Table sample_s = spilled.SampleRows(500, 9);
      EXPECT_EQ(TableFingerprint(sample_s), TableFingerprint(sample_r));
      Table sel_r = resident.SelectColumns({3, 1});
      Table sel_s = spilled.SelectColumns({3, 1});
      EXPECT_EQ(TableFingerprint(sel_s), TableFingerprint(sel_r));
      EXPECT_EQ(sel_s.spilled_column_count(), spilled.spilled_column_count() > 0
                                                  ? sel_s.num_columns()
                                                  : 0);
    }
  }
}

TEST(SpillEquivalence, RowAtATimeIngestSpillsIdentically) {
  const std::string dir = TestDir("addrow");
  Schema schema(std::vector<std::string>{"a", "b"});
  TableBuilder resident(schema);
  TableBuilder spilling(schema, Policy(dir, 1 << 10));
  // Past the 4096-row cadence at which the row-at-a-time path rechecks the
  // budget, so the tiny budget actually triggers a spill.
  uint64_t state = 99;
  for (int64_t i = 0; i < 10000; ++i) {
    std::vector<Value> row = {Value(static_cast<int64_t>(i)),
                              Value("v" + std::to_string(Next(&state) % 31))};
    resident.AddRow(row);
    spilling.AddRow(row);
  }
  Table a = resident.Build();
  Table b;
  ASSERT_TRUE(spilling.Build(&b).ok());
  EXPECT_GT(b.spilled_column_count(), 0);
  EXPECT_EQ(TableFingerprint(a), TableFingerprint(b));
  EXPECT_EQ(CanonicalReport(a), CanonicalReport(b));
}

TEST(SpillEquivalence, SpilledTableMemoryAccounting) {
  const std::string dir = TestDir("accounting");
  const std::string csv = MakeCsv(dir, 3000, 5);
  Table resident, spilled;
  ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, &resident).ok());
  ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, Policy(dir, 1 << 10), &spilled).ok());
  ASSERT_EQ(spilled.spilled_column_count(), spilled.num_columns());

  // Resident accounting excludes the mmapped code files; mapped accounting
  // covers them (4 bytes per row per column, plus chunk stats + trailer).
  EXPECT_EQ(resident.MappedBytes(), 0);
  EXPECT_GT(spilled.MappedBytes(),
            spilled.num_rows() * spilled.num_columns() * 4);
  EXPECT_LT(spilled.ApproxBytes(), resident.ApproxBytes());

  // A projection shares the mapping: mapped bytes must not double-count.
  Table twice = spilled.SelectColumns({0, 0});
  Table once = spilled.SelectColumns({0});
  EXPECT_EQ(twice.MappedBytes(), once.MappedBytes());
}

TEST(SpillEquivalence, ProfileCsvFileSpillOverloadMatchesResident) {
  const std::string dir = TestDir("streamprof");
  const std::string csv = MakeCsv(dir, 3000, 6);
  KeyDiscoveryResult plain, spilled;
  ASSERT_TRUE(ProfileCsvFile(csv, CsvOptions{}, GordianOptions{}, &plain)
                  .ok());
  ASSERT_TRUE(ProfileCsvFile(csv, CsvOptions{}, GordianOptions{},
                             Policy(dir, 1 << 10), &spilled)
                  .ok());
  auto sorted = [](std::vector<AttributeSet> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(plain.KeySets()), sorted(spilled.KeySets()));
  EXPECT_EQ(plain.non_keys.size(), spilled.non_keys.size());
}

TEST(SpillEquivalence, ArtifactStoreRoundTrip) {
  const std::string dir = TestDir("artifacts");
  const std::string csv = MakeCsv(dir, 2000, 7);
  Table t;
  ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, &t).ok());
  const uint64_t fp = TableFingerprint(t);

  TableArtifactStore::Options opts;
  opts.chunk_rows = 256;
  TableArtifactStore store(dir + "/store", opts);
  EXPECT_FALSE(store.Contains(fp));
  ASSERT_TRUE(store.Put(fp, t).ok());
  EXPECT_TRUE(store.Contains(fp));
  // Content-addressed: a second Put of the same fingerprint is a no-op.
  ASSERT_TRUE(store.Put(fp, t).ok());

  Table back;
  ASSERT_TRUE(store.Get(fp, &back).ok());
  EXPECT_EQ(back.spilled_column_count(), back.num_columns());
  EXPECT_EQ(back.num_rows(), t.num_rows());
  EXPECT_EQ(TableFingerprint(back), fp);
  EXPECT_EQ(CanonicalReport(back), CanonicalReport(t));

  Table missing;
  Status s = store.Get(fp + 1, &missing);
  EXPECT_EQ(s.code(), Status::Code::kNotFound);

  // A flipped byte anywhere in the meta file is caught by its checksum.
  std::string meta;
  ASSERT_TRUE(DefaultFileSystem()->ReadFile(store.MetaPath(fp), &meta).ok());
  std::string bad = meta;
  bad[bad.size() / 2] = static_cast<char>(bad[bad.size() / 2] ^ 0x01);
  ASSERT_TRUE(DefaultFileSystem()->WriteFile(store.MetaPath(fp), bad).ok());
  EXPECT_EQ(store.Get(fp, &back).code(), Status::Code::kInvalidArgument);
  ASSERT_TRUE(DefaultFileSystem()->WriteFile(store.MetaPath(fp), meta).ok());
  ASSERT_TRUE(store.Get(fp, &back).ok());
}

TEST(SpillEquivalence, ArtifactPutCrashLeavesNoCommittedArtifact) {
  const std::string dir = TestDir("artifact_crash");
  const std::string csv = MakeCsv(dir, 500, 8);
  Table t;
  ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, &t).ok());
  const uint64_t fp = TableFingerprint(t);

  // Fail the meta rename — every column file is already published, but the
  // artifact must still read as absent, and a retry must complete it.
  FaultInjectionFs ffs(DefaultFileSystem());
  TableArtifactStore::Options opts;
  opts.fs = &ffs;
  TableArtifactStore store(dir + "/store", opts);
  FaultSpec spec;
  spec.op = FsOp::kRename;
  spec.path_substr = "meta.grdd";
  ffs.Arm(spec);
  EXPECT_FALSE(store.Put(fp, t).ok());
  EXPECT_TRUE(ffs.fired());
  ffs.Reset();
  EXPECT_FALSE(store.Contains(fp));

  ASSERT_TRUE(store.Put(fp, t).ok());
  Table back;
  ASSERT_TRUE(store.Get(fp, &back).ok());
  EXPECT_EQ(TableFingerprint(back), fp);
}

TEST(SpillEquivalence, ServicePersistsArtifactsAndSpillsCsvJobs) {
  const std::string dir = TestDir("service");
  const std::string csv = MakeCsv(dir, 2500, 10);
  Table t;
  ASSERT_TRUE(ReadCsv(csv, CsvOptions{}, &t).ok());
  const std::string want_report = CanonicalReport(t);

  ServiceOptions options;
  options.num_threads = 2;
  options.table_artifact_dir = dir + "/artifacts";
  options.spill_dir = dir + "/scratch";
  options.spill_memory_budget = 1 << 10;
  ProfilingService service(options);
  ASSERT_NE(service.artifact_store(), nullptr);

  ProfileOutcome table_outcome = service.Wait(service.SubmitTable("t", &t));
  ASSERT_EQ(table_outcome.info.state, JobState::kSucceeded);
  ASSERT_NE(table_outcome.fingerprint, 0u);

  // The completed table job persisted its table; a reload round-trips.
  Table back;
  ASSERT_TRUE(
      service.artifact_store()->Get(table_outcome.fingerprint, &back).ok());
  EXPECT_EQ(TableFingerprint(back), table_outcome.fingerprint);
  EXPECT_EQ(CanonicalReport(back), want_report);
  EXPECT_GE(service.Metrics().artifact_puts, 1);

  // A CSV job under the 1 KB ingest budget spills during ingest and still
  // reports the same keys as the resident table.
  ProfileOutcome csv_outcome =
      service.Wait(service.SubmitCsv("t_csv", csv, CsvOptions{}));
  ASSERT_EQ(csv_outcome.info.state, JobState::kSucceeded);
  auto sorted = [](std::vector<AttributeSet> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(csv_outcome.result.KeySets()),
            sorted(FindKeys(t).KeySets()));
}

}  // namespace
}  // namespace gordian
