// Targeted unit tests for NonKeyFinder (Algorithm 4) beyond the end-to-end
// sweeps: the Section 3.5 worked trace, pruning-counter behavior on crafted
// trees, and the interaction between traversal and the NonKeySet.

#include "core/non_key_finder.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/gordian.h"
#include "core/prefix_tree.h"
#include "table/table.h"

namespace gordian {
namespace {

Table PaperDataset() {
  TableBuilder b(Schema(std::vector<std::string>{
      "First Name", "Last Name", "Phone", "Emp No"}));
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{3478}),
            Value(int64_t{10})});
  b.AddRow({Value("Michael"), Value("Thompson"), Value(int64_t{6791}),
            Value(int64_t{50})});
  b.AddRow({Value("Michael"), Value("Spencer"), Value(int64_t{5237}),
            Value(int64_t{20})});
  b.AddRow({Value("Sally"), Value("Kwan"), Value(int64_t{3478}),
            Value(int64_t{90})});
  return b.Build();
}

std::vector<int> SchemaOrder(int d) {
  std::vector<int> order(d);
  for (int i = 0; i < d; ++i) order[i] = i;
  return order;
}

struct RunOutcome {
  std::vector<AttributeSet> non_keys;
  GordianStats stats;
};

RunOutcome RunFinder(const Table& t, const GordianOptions& o) {
  RunOutcome out;
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(t.num_columns()),
                                      o.tree_build);
  NonKeySet set(&out.stats);
  NonKeyFinder finder(tree, o, &set, &out.stats);
  EXPECT_TRUE(finder.Run());
  out.non_keys = set.non_keys();
  return out;
}

TEST(NonKeyFinder, PaperTraceFindsTheTwoNonKeysWithOneFutilityPrune) {
  // Section 3.5 narrates exactly one futility prune on this dataset (at
  // node M3, the <First Name> segment) and singleton prunes at node (6) and
  // at nodes (4),(5),(7) during the merged traversal.
  GordianOptions o;
  RunOutcome out = RunFinder(PaperDataset(), o);
  std::sort(out.non_keys.begin(), out.non_keys.end());
  EXPECT_EQ(out.non_keys,
            (std::vector<AttributeSet>{AttributeSet{0, 1}, AttributeSet{2}}));
  // The paper's trace prunes the redundant <First Name> check at the leaf
  // of node M3; in this implementation that lands either in the merge-gate
  // futility counter or in the NonKeySet's covered-rejection fast path,
  // depending on where the redundancy is caught.
  EXPECT_GE(out.stats.futility_prunes + out.stats.non_keys_rejected_covered,
            1);
  EXPECT_GT(out.stats.singleton_traversal_prunes, 0);
}

TEST(NonKeyFinder, NoPruningStillFindsTheSameNonKeys) {
  GordianOptions o;
  o.singleton_pruning = false;
  o.futility_pruning = false;
  o.single_entity_pruning = false;
  RunOutcome out = RunFinder(PaperDataset(), o);
  std::sort(out.non_keys.begin(), out.non_keys.end());
  EXPECT_EQ(out.non_keys,
            (std::vector<AttributeSet>{AttributeSet{0, 1}, AttributeSet{2}}));
  // Without pruning, more nodes get visited.
  RunOutcome pruned = RunFinder(PaperDataset(), GordianOptions{});
  EXPECT_GT(out.stats.nodes_visited, pruned.stats.nodes_visited);
}

TEST(NonKeyFinder, UniqueColumnYieldsNoNonKeysThere) {
  // Table where column 0 is unique: no non-key may contain... actually a
  // non-key may not exist at all if every column is unique; craft column 0
  // unique, column 1 constant.
  TableBuilder b(Schema(std::vector<std::string>{"id", "const"}));
  for (int i = 0; i < 10; ++i) b.AddRow({Value(int64_t{i}), Value("x")});
  RunOutcome out = RunFinder(b.Build(), GordianOptions{});
  ASSERT_EQ(out.non_keys.size(), 1u);
  EXPECT_EQ(out.non_keys[0], AttributeSet{1});
}

TEST(NonKeyFinder, AllRowsIdenticalInOneColumnPair) {
  // Two columns, both constant: the maximal non-key is {0,1} (all rows
  // collide), found at the leaf of the base tree... but identical full rows
  // mean "no keys" and the tree flags it; NonKeyFinder is not even run by
  // the facade. Here rows differ in a third column.
  TableBuilder b(Schema(std::vector<std::string>{"c1", "c2", "id"}));
  for (int i = 0; i < 8; ++i) {
    b.AddRow({Value("a"), Value("b"), Value(int64_t{i})});
  }
  RunOutcome out = RunFinder(b.Build(), GordianOptions{});
  ASSERT_EQ(out.non_keys.size(), 1u);
  EXPECT_EQ(out.non_keys[0], (AttributeSet{0, 1}));
}

TEST(NonKeyFinder, SingleEntityPruneCountsSlicesOfOneEntity) {
  // Distinct ids at the root level: every level-1 slice holds one entity.
  TableBuilder b(Schema(std::vector<std::string>{"id", "x", "y"}));
  for (int i = 0; i < 16; ++i) {
    b.AddRow({Value(int64_t{i}), Value(int64_t{i % 2}), Value(int64_t{i % 3})});
  }
  GordianOptions o;
  RunOutcome out = RunFinder(b.Build(), o);
  EXPECT_EQ(out.stats.single_entity_prunes, 16);
}

TEST(NonKeyFinder, EmptyTreeIsANoOp) {
  TableBuilder b(Schema(std::vector<std::string>{"a"}));
  Table t = b.Build();
  GordianOptions o;
  GordianStats stats;
  PrefixTree tree = PrefixTree::Build(t, {0}, o.tree_build);
  NonKeySet set(&stats);
  NonKeyFinder finder(tree, o, &set, &stats);
  EXPECT_TRUE(finder.Run());
  EXPECT_EQ(set.size(), 0);
  EXPECT_EQ(stats.nodes_visited, 0);
}

TEST(NonKeyFinder, MergeIntermediatesAreReleased) {
  Table t = PaperDataset();
  GordianOptions o;
  GordianStats stats;
  PrefixTree tree = PrefixTree::Build(t, SchemaOrder(4), o.tree_build);
  int64_t base_nodes = tree.pool().live_nodes();
  NonKeySet set(&stats);
  NonKeyFinder finder(tree, o, &set, &stats);
  EXPECT_TRUE(finder.Run());
  // Every merge intermediate must have been unreffed back to the base tree.
  EXPECT_EQ(tree.pool().live_nodes(), base_nodes);
  EXPECT_GE(tree.pool().peak_bytes(), tree.pool().current_bytes());
}

TEST(NonKeyFinder, FutilityPruningNeedsDiscoveredNonKeys) {
  // On a table whose only non-key is found last (lexicographically), the
  // futility counter stays low; the counter is data-dependent, so just
  // assert consistency: prunes require at least one prior non-key.
  TableBuilder b(Schema(std::vector<std::string>{"a", "b"}));
  for (int i = 0; i < 6; ++i) {
    b.AddRow({Value(int64_t{i}), Value(int64_t{i / 2})});
  }
  RunOutcome out = RunFinder(b.Build(), GordianOptions{});
  if (out.stats.futility_prunes > 0) {
    EXPECT_GT(out.stats.non_key_insert_attempts, 0);
  }
}

}  // namespace
}  // namespace gordian
