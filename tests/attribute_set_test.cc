#include "common/attribute_set.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gordian {
namespace {

TEST(AttributeSet, DefaultIsEmpty) {
  AttributeSet s;
  EXPECT_TRUE(s.Empty());
  EXPECT_EQ(s.Count(), 0);
  EXPECT_EQ(s.First(), -1);
}

TEST(AttributeSet, SetTestReset) {
  AttributeSet s;
  for (int i : {0, 1, 63, 64, 65, 127}) {
    EXPECT_FALSE(s.Test(i));
    s.Set(i);
    EXPECT_TRUE(s.Test(i));
  }
  EXPECT_EQ(s.Count(), 6);
  s.Reset(64);
  EXPECT_FALSE(s.Test(64));
  EXPECT_EQ(s.Count(), 5);
}

TEST(AttributeSet, InitializerListAndSingle) {
  AttributeSet s{2, 5, 70};
  EXPECT_TRUE(s.Test(2));
  EXPECT_TRUE(s.Test(5));
  EXPECT_TRUE(s.Test(70));
  EXPECT_EQ(s.Count(), 3);
  EXPECT_EQ(AttributeSet::Single(99).Count(), 1);
  EXPECT_TRUE(AttributeSet::Single(99).Test(99));
}

TEST(AttributeSet, FirstNAndRange) {
  EXPECT_EQ(AttributeSet::FirstN(0).Count(), 0);
  EXPECT_EQ(AttributeSet::FirstN(70).Count(), 70);
  EXPECT_TRUE(AttributeSet::FirstN(70).Test(69));
  EXPECT_FALSE(AttributeSet::FirstN(70).Test(70));
  AttributeSet r = AttributeSet::Range(60, 68);
  EXPECT_EQ(r.Count(), 8);
  EXPECT_TRUE(r.Test(60));
  EXPECT_TRUE(r.Test(67));
  EXPECT_FALSE(r.Test(68));
}

TEST(AttributeSet, CoversIsSupersetRelation) {
  AttributeSet big{1, 2, 3, 64};
  AttributeSet small{2, 64};
  EXPECT_TRUE(big.Covers(small));
  EXPECT_FALSE(small.Covers(big));
  EXPECT_TRUE(big.Covers(big));  // non-strict
  EXPECT_TRUE(big.Covers(AttributeSet()));
  EXPECT_FALSE(AttributeSet().Covers(small));
}

TEST(AttributeSet, Intersects) {
  AttributeSet a{1, 65};
  AttributeSet b{65};
  AttributeSet c{2, 66};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(AttributeSet()));
}

TEST(AttributeSet, SetAlgebra) {
  AttributeSet a{1, 2, 64};
  AttributeSet b{2, 64, 100};
  EXPECT_EQ((a | b), (AttributeSet{1, 2, 64, 100}));
  EXPECT_EQ((a & b), (AttributeSet{2, 64}));
  EXPECT_EQ((a - b), AttributeSet{1});
  EXPECT_EQ((b - a), AttributeSet{100});
}

TEST(AttributeSet, FirstAndNextIterateAscending) {
  AttributeSet s{3, 64, 127};
  EXPECT_EQ(s.First(), 3);
  EXPECT_EQ(s.Next(3), 64);
  EXPECT_EQ(s.Next(64), 127);
  EXPECT_EQ(s.Next(127), -1);
}

TEST(AttributeSet, ForEachVisitsAllInOrder) {
  AttributeSet s{0, 7, 63, 64, 126};
  std::vector<int> seen;
  s.ForEach([&](int a) { seen.push_back(a); });
  EXPECT_EQ(seen, (std::vector<int>{0, 7, 63, 64, 126}));
}

TEST(AttributeSet, OrderingIsTotalAndConsistent) {
  std::set<AttributeSet> sorted;
  sorted.insert(AttributeSet{1});
  sorted.insert(AttributeSet{2});
  sorted.insert(AttributeSet{1, 2});
  sorted.insert(AttributeSet{64});
  EXPECT_EQ(sorted.size(), 4u);
  EXPECT_FALSE(AttributeSet{1} < AttributeSet{1});
}

TEST(AttributeSet, HashDiffersAcrossNearbySets) {
  // Not a strict guarantee, but these must not all collide.
  std::set<size_t> hashes;
  for (int i = 0; i < 128; ++i) hashes.insert(AttributeSet::Single(i).Hash());
  EXPECT_GT(hashes.size(), 120u);
}

TEST(AttributeSet, ToString) {
  EXPECT_EQ((AttributeSet{0, 3, 70}).ToString(), "{0,3,70}");
  EXPECT_EQ(AttributeSet().ToString(), "{}");
}

}  // namespace
}  // namespace gordian
