// Tests for the mini query engine: index correctness (equality and value
// ranges), plan/scan equivalence, the costing planner, and the advisor
// pipeline of Section 4.4.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/random.h"
#include "core/gordian.h"
#include "datagen/tpch_lite.h"
#include "engine/advisor.h"
#include "engine/executor.h"
#include "engine/index.h"
#include "engine/query.h"
#include "engine/row_store.h"
#include "engine/workload.h"

namespace gordian {
namespace {

Table SmallFact() { return GenerateTpchFact(5000, 21); }

TEST(RowStore, MirrorsTableCodes) {
  Table t = SmallFact();
  RowStore store(t);
  EXPECT_EQ(store.num_rows(), t.num_rows());
  EXPECT_EQ(store.num_columns(), t.num_columns());
  Random rng(1);
  for (int i = 0; i < 200; ++i) {
    int64_t r = rng.Uniform(t.num_rows());
    int c = static_cast<int>(rng.Uniform(t.num_columns()));
    EXPECT_EQ(store.at(r, c), t.code(r, c));
  }
}

TEST(CompositeIndex, EqualRangeFindsAllMatches) {
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  int ln = t.schema().Find("f_linenumber");
  CompositeIndex idx(t, store, {ok, ln});
  EXPECT_EQ(idx.num_entries(), t.num_rows());

  // Full-key lookup of a known row.
  uint32_t okc = t.code(123, ok), lnc = t.code(123, ln);
  auto [b, e] = idx.EqualRange({okc, lnc});
  EXPECT_EQ(e - b, 1);  // composite key -> unique entry
  EXPECT_EQ(idx.row_id(b), 123);

  // Prefix lookup: count must match a scan.
  auto [pb, pe] = idx.EqualRange({okc});
  int64_t expected = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (t.code(r, ok) == okc) ++expected;
  }
  EXPECT_EQ(pe - pb, expected);
}

TEST(CompositeIndex, EntriesAreValueSorted) {
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  int ln = t.schema().Find("f_linenumber");
  CompositeIndex idx(t, store, {ok, ln});
  const Dictionary& dok = t.dictionary(ok);
  const Dictionary& dln = t.dictionary(ln);
  for (int64_t e = 1; e < idx.num_entries(); ++e) {
    int64_t a0 = dok.Decode(idx.key(e - 1, 0)).int64();
    int64_t b0 = dok.Decode(idx.key(e, 0)).int64();
    ASSERT_LE(a0, b0) << "entry " << e;
    if (a0 == b0) {
      ASSERT_LE(dln.Decode(idx.key(e - 1, 1)).int64(),
                dln.Decode(idx.key(e, 1)).int64());
    }
  }
}

TEST(CompositeIndex, ValueRangeMatchesScanCount) {
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  CompositeIndex idx(t, store, {ok});
  auto [b, e] = idx.ValueRange(100, 300);
  int64_t expected = 0;
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    int64_t v = t.value(r, ok).int64();
    if (v >= 100 && v <= 300) ++expected;
  }
  EXPECT_EQ(e - b, expected);
  // Empty range.
  auto [eb, ee] = idx.ValueRange(-10, -5);
  EXPECT_EQ(eb, ee);
}

TEST(Executor, IndexPlansMatchScansOnTheWholeWorkload) {
  Table t = SmallFact();
  RowStore store(t);
  KeyDiscoveryResult keys = FindKeys(t);
  ASSERT_FALSE(keys.no_keys);
  Planner planner = BuildRecommendedIndexes(t, store, keys);

  for (const Query& q : MakeWarehouseWorkload(t, 33)) {
    QueryResult scan = ExecuteScan(t, store, q);
    PlanChoice plan = planner.Choose(t, q);
    QueryResult via_plan = Execute(t, store, plan, q);
    EXPECT_EQ(scan, via_plan) << q.label;
    EXPECT_GT(scan.rows_matched, 0) << q.label << " matches nothing";
  }
}

TEST(Executor, ForcedIndexAgreesWithScanOnEveryIndex) {
  // Even an index the planner would not choose must produce the right
  // answer (the executor re-verifies predicates).
  Table t = SmallFact();
  RowStore store(t);
  KeyDiscoveryResult keys = FindKeys(t);
  Planner planner = BuildRecommendedIndexes(t, store, keys);
  Query q;
  q.range.col = t.schema().Find("f_orderkey");
  q.range.lo = 50;
  q.range.hi = 500;
  q.projection = {t.schema().Find("f_quantity")};
  QueryResult scan = ExecuteScan(t, store, q);
  for (const auto& idx : planner.indexes()) {
    EXPECT_EQ(ExecuteWithIndex(t, store, *idx, q), scan) << idx->Describe();
  }
}

TEST(Executor, CoveringDetectionAndCostPreference) {
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  int ln = t.schema().Find("f_linenumber");
  int qty = t.schema().Find("f_quantity");
  std::vector<std::unique_ptr<CompositeIndex>> idxs;
  idxs.push_back(
      std::make_unique<CompositeIndex>(t, store, std::vector<int>{ok, ln}));
  idxs.push_back(std::make_unique<CompositeIndex>(
      t, store, std::vector<int>{ok, ln, qty}));
  Planner planner(std::move(idxs));

  Query covered;
  covered.predicates = {{ok, t.code(0, ok)}};
  covered.projection = {ok, ln};
  PlanChoice p1 = planner.Choose(t, covered);
  ASSERT_NE(p1.index, nullptr);
  EXPECT_TRUE(p1.covering);

  // Projection outside the 2-col index: the wider index covers and must be
  // preferred over fetching.
  Query wide = covered;
  wide.projection = {qty};
  PlanChoice p2 = planner.Choose(t, wide);
  ASSERT_NE(p2.index, nullptr);
  EXPECT_TRUE(p2.covering);
  EXPECT_EQ(p2.index->columns().size(), 3u);
}

TEST(Executor, PlannerFallsBackToScanWhenIndexWouldLose) {
  // A range spanning nearly the whole table with an uncovered projection:
  // per-match fetches cost more than one sequential scan.
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  std::vector<std::unique_ptr<CompositeIndex>> idxs;
  idxs.push_back(
      std::make_unique<CompositeIndex>(t, store, std::vector<int>{ok}));
  Planner planner(std::move(idxs));

  Query q;
  q.range.col = ok;
  q.range.lo = 0;
  q.range.hi = 1 << 30;
  q.projection = {t.schema().Find("f_quantity")};
  PlanChoice p = planner.Choose(t, q);
  EXPECT_EQ(p.index, nullptr);  // scan wins on cost

  // A narrow range flips the decision.
  q.range.lo = 10;
  q.range.hi = 20;
  PlanChoice narrow = planner.Choose(t, q);
  EXPECT_NE(narrow.index, nullptr);
}

TEST(Executor, PlannerRequiresLeadingColumnMatch) {
  Table t = SmallFact();
  RowStore store(t);
  int ok = t.schema().Find("f_orderkey");
  int ln = t.schema().Find("f_linenumber");
  int qty = t.schema().Find("f_quantity");
  std::vector<std::unique_ptr<CompositeIndex>> idxs;
  idxs.push_back(
      std::make_unique<CompositeIndex>(t, store, std::vector<int>{ok, ln}));
  Planner planner(std::move(idxs));

  // Predicate on the second index column only: not a leading prefix.
  Query q;
  q.predicates = {{ln, t.code(0, ln)}};
  q.projection = {qty};
  EXPECT_EQ(planner.Choose(t, q).index, nullptr);

  // Range on a non-leading column.
  Query q2;
  q2.range.col = ln;
  q2.range.lo = 1;
  q2.range.hi = 2;
  q2.projection = {ok};
  EXPECT_EQ(planner.Choose(t, q2).index, nullptr);

  // No predicates -> scan.
  Query q3;
  q3.projection = {ok};
  EXPECT_EQ(planner.Choose(t, q3).index, nullptr);
}

TEST(Advisor, RecommendsOneIndexPerKeyOrderedBySelectivity) {
  Table t = SmallFact();
  KeyDiscoveryResult keys = FindKeys(t);
  auto recs = RecommendIndexColumns(t, keys);
  EXPECT_EQ(recs.size(), keys.keys.size());
  for (const auto& cols : recs) {
    for (size_t i = 1; i < cols.size(); ++i) {
      EXPECT_GE(t.ColumnCardinality(cols[i - 1]),
                t.ColumnCardinality(cols[i]));
    }
  }
}

TEST(Workload, TwentyLabeledNonEmptyQueries) {
  Table t = SmallFact();
  RowStore store(t);
  auto workload = MakeWarehouseWorkload(t, 3);
  EXPECT_EQ(workload.size(), 20u);
  for (const Query& q : workload) {
    EXPECT_FALSE(q.label.empty());
    EXPECT_FALSE(q.projection.empty());
    QueryResult scan = ExecuteScan(t, store, q);
    EXPECT_GT(scan.rows_matched, 0) << q.label;
  }
}

}  // namespace
}  // namespace gordian
