// Tests for semi-structured record flattening (table/records) and its
// end-to-end use with GORDIAN — profiling a document collection with a
// common schema, as Section 1 of the paper envisions.

#include "table/records.h"

#include <gtest/gtest.h>

#include "core/gordian.h"

namespace gordian {
namespace {

TEST(Records, FlattensUnionOfFieldsWithNulls) {
  std::vector<Record> docs = {
      {{"id", Value(int64_t{1})}, {"name", Value("ada")}},
      {{"id", Value(int64_t{2})}, {"email", Value("b@x")}},
  };
  Table t;
  ASSERT_TRUE(FlattenRecords(docs, &t).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.num_columns(), 3);
  // Columns are sorted: email, id, name.
  EXPECT_EQ(t.schema().name(0), "email");
  EXPECT_EQ(t.schema().name(1), "id");
  EXPECT_EQ(t.schema().name(2), "name");
  EXPECT_TRUE(t.value(0, 0).is_null());   // doc 1 has no email
  EXPECT_TRUE(t.value(1, 2).is_null());   // doc 2 has no name
  EXPECT_EQ(t.value(1, 0), Value("b@x"));
}

TEST(Records, FieldOrderWithinRecordIrrelevant) {
  std::vector<Record> docs = {
      {{"a", Value(int64_t{1})}, {"b", Value(int64_t{2})}},
      {{"b", Value(int64_t{3})}, {"a", Value(int64_t{4})}},
  };
  Table t;
  ASSERT_TRUE(FlattenRecords(docs, &t).ok());
  EXPECT_EQ(t.value(1, 0), Value(int64_t{4}));
  EXPECT_EQ(t.value(1, 1), Value(int64_t{3}));
}

TEST(Records, RejectsDuplicateFieldAndEmptyInput) {
  std::vector<Record> dup = {
      {{"a", Value(int64_t{1})}, {"a", Value(int64_t{2})}}};
  Table t;
  EXPECT_FALSE(FlattenRecords(dup, &t).ok());
  std::vector<Record> empty;
  EXPECT_FALSE(FlattenRecords(empty, &t).ok());
  std::vector<Record> no_fields = {{}};
  EXPECT_FALSE(FlattenRecords(no_fields, &t).ok());
}

TEST(Records, KeyDiscoveryOverDocumentCollection) {
  // A document collection where /doc/@id is a key and (author, title) is a
  // composite key but author alone is not.
  std::vector<Record> docs;
  const char* authors[] = {"kim", "lee", "kim", "lee", "park"};
  for (int i = 0; i < 5; ++i) {
    docs.push_back({{"doc/@id", Value(int64_t{100 + i})},
                    {"doc/author", Value(authors[i])},
                    {"doc/title", Value("t" + std::to_string(i % 3))},
                    {"doc/year", Value(int64_t{2000 + i % 2})}});
  }
  Table t;
  ASSERT_TRUE(FlattenRecords(docs, &t).ok());
  KeyDiscoveryResult r = FindKeys(t);
  ASSERT_FALSE(r.no_keys);
  int id = t.schema().Find("doc/@id");
  bool id_is_key = false;
  for (const DiscoveredKey& k : r.keys) {
    if (k.attrs == AttributeSet::Single(id)) id_is_key = true;
  }
  EXPECT_TRUE(id_is_key);
  // author alone must not be reported.
  int author = t.schema().Find("doc/author");
  for (const DiscoveredKey& k : r.keys) {
    EXPECT_NE(k.attrs, AttributeSet::Single(author));
  }
}

TEST(Records, NullsCompareEqualForKeyPurposes) {
  // Two records both missing "opt": opt is NULL twice, so <opt> is a
  // non-key even though the values are "missing".
  std::vector<Record> docs = {
      {{"id", Value(int64_t{1})}},
      {{"id", Value(int64_t{2})}},
  };
  docs[0].push_back({"opt", Value::Null()});
  docs[1].push_back({"opt", Value::Null()});
  Table t;
  ASSERT_TRUE(FlattenRecords(docs, &t).ok());
  KeyDiscoveryResult r = FindKeys(t);
  int opt = t.schema().Find("opt");
  bool opt_non_key = false;
  for (const AttributeSet& nk : r.non_keys) {
    if (nk.Test(opt)) opt_non_key = true;
  }
  EXPECT_TRUE(opt_non_key);
}

}  // namespace
}  // namespace gordian
