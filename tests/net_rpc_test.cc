// In-process tests for the distributed profiling front-end: RPC server and
// client over real loopback sockets, shard-owner workers, the router's
// admission control (queues + quotas), retry/failover, and equivalence of
// remote results with a local single-process run.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "datagen/synthetic.h"
#include "net/client.h"
#include "net/router.h"
#include "net/socket.h"
#include "net/worker.h"
#include "service/key_catalog.h"
#include "service/profiling_service.h"
#include "table/fingerprint.h"
#include "table/serialize.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed, int columns = 5) {
  SyntheticSpec spec = UniformSpec(columns, rows, 32, 0.5, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[2].cardinality = 64;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

void ExpectSameResult(const KeyDiscoveryResult& a,
                      const KeyDiscoveryResult& b) {
  EXPECT_EQ(a.no_keys, b.no_keys);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.incomplete, b.incomplete);
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].attrs, b.keys[i].attrs);
    EXPECT_DOUBLE_EQ(a.keys[i].estimated_strength,
                     b.keys[i].estimated_strength);
    EXPECT_DOUBLE_EQ(a.keys[i].exact_strength, b.keys[i].exact_strength);
  }
  EXPECT_EQ(a.non_keys, b.non_keys);
}

// Finds a seed whose table fingerprint lands in [first, last]; the routing
// tests need tables aimed at a specific owner.
Table TableForShards(int first, int last, uint64_t* seed_io) {
  for (uint64_t seed = *seed_io;; ++seed) {
    Table t = MakeTable(120, seed);
    const int shard = KeyCatalog::ShardIndexOf(TableFingerprint(t));
    if (shard >= first && shard <= last) {
      *seed_io = seed + 1;
      return t;
    }
  }
}

// ----------------------------------------------------------------- raw RPC

TEST(Rpc, EchoOverLoopback) {
  RpcServer server(RpcServer::Options{});
  ASSERT_TRUE(server
                  .Start([](const Frame& request, Frame* response) {
                    response->payload = request.payload + "!";
                  })
                  .ok());
  ASSERT_GT(server.port(), 0);

  RpcClient client("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    RpcReply reply;
    ASSERT_TRUE(
        client.Call(RpcMethod::kHealth, "ping" + std::to_string(i), 2000,
                    &reply)
            .ok());
    EXPECT_TRUE(reply.remote.ok());
    EXPECT_EQ(reply.payload, "ping" + std::to_string(i) + "!");
  }
  server.Stop();
}

TEST(Rpc, RemoteErrorsAndRetryAfterCrossTheWire) {
  RpcServer server(RpcServer::Options{});
  ASSERT_TRUE(server
                  .Start([](const Frame&, Frame* response) {
                    response->status_code = Status::Code::kUnavailable;
                    response->payload = "try later";
                    response->deadline_millis = 77;
                  })
                  .ok());
  RpcClient client("127.0.0.1", server.port());
  RpcReply reply;
  ASSERT_TRUE(client.Call(RpcMethod::kProfile, "", 2000, &reply).ok());
  EXPECT_TRUE(reply.remote.IsUnavailable());
  EXPECT_NE(reply.remote.ToString().find("try later"), std::string::npos);
  EXPECT_EQ(reply.retry_after_millis, 77u);
  server.Stop();
}

TEST(Rpc, ConnectionRefusedIsATransportError) {
  RpcClient client("127.0.0.1", 1);  // nothing listens on port 1
  RpcReply reply;
  Status s = client.Call(RpcMethod::kHealth, "", 500, &reply);
  EXPECT_FALSE(s.ok());
}

TEST(Rpc, ServerSurvivesGarbageConnections) {
  std::atomic<int> handled{0};
  RpcServer server(RpcServer::Options{});
  ASSERT_TRUE(server
                  .Start([&handled](const Frame&, Frame* response) {
                    handled.fetch_add(1);
                    response->payload = "ok";
                  })
                  .ok());
  // A client that speaks garbage gets its connection dropped...
  {
    std::unique_ptr<ByteStream> raw;
    ASSERT_TRUE(TcpConnect("127.0.0.1", server.port(),
                           std::chrono::milliseconds(2000), &raw)
                    .ok());
    std::string junk(64, '\x5A');
    (void)raw->Write(junk.data(), junk.size());
    char buf[16];
    size_t n = 1;
    // The server closes; we read end-of-stream (n == 0) or an error.
    Status s = raw->ReadSome(buf, sizeof(buf), &n);
    EXPECT_TRUE(!s.ok() || n == 0);
    raw->Close();
  }
  // ...while well-formed clients are unaffected.
  RpcClient client("127.0.0.1", server.port());
  RpcReply reply;
  ASSERT_TRUE(client.Call(RpcMethod::kHealth, "", 2000, &reply).ok());
  EXPECT_TRUE(reply.remote.ok());
  EXPECT_EQ(handled.load(), 1);
  server.Stop();
}

// ------------------------------------------------------------------ worker

TEST(Worker, RemoteProfileMatchesLocalRun) {
  WorkerOptions options;
  WorkerDaemon worker(options);
  ASSERT_TRUE(worker.Start().ok());

  Table table = MakeTable(300, 1);
  ProfileClient client("127.0.0.1", worker.port());
  RemoteOutcome remote;
  ASSERT_TRUE(
      client.Profile("t", table, RemoteProfileOptions{}, &remote).ok());
  EXPECT_EQ(remote.served_by, "owner-00-15");
  EXPECT_EQ(remote.fingerprint, TableFingerprint(table));
  EXPECT_FALSE(remote.cache_hit);

  ProfilingService local;
  ProfileOutcome baseline = local.Wait(local.SubmitTable("t", &table));
  ExpectSameResult(remote.result, baseline.result);

  // Same table again: the worker's catalog answers without re-discovery.
  RemoteOutcome again;
  ASSERT_TRUE(
      client.Profile("t", table, RemoteProfileOptions{}, &again).ok());
  EXPECT_TRUE(again.cache_hit);
  ExpectSameResult(again.result, baseline.result);
  worker.Stop();
}

TEST(Worker, HealthProbeReportsShardsAndCatalog) {
  WorkerOptions options;
  options.shard_first = 4;
  options.shard_last = 9;
  WorkerDaemon worker(options);
  ASSERT_TRUE(worker.Start().ok());

  ProfileClient client("127.0.0.1", worker.port());
  HealthInfo info;
  ASSERT_TRUE(client.Health(&info).ok());
  EXPECT_EQ(info.role, HealthInfo::Role::kWorker);
  EXPECT_TRUE(info.accepting);
  EXPECT_EQ(info.shard_first, 4);
  EXPECT_EQ(info.shard_last, 9);
  worker.Stop();
}

TEST(Worker, ShedsBeyondActiveRpcCap) {
  WorkerOptions options;
  options.max_active_rpcs = 0;  // shed everything: capacity test
  options.retry_after_millis = 11;
  WorkerDaemon worker(options);
  ASSERT_TRUE(worker.Start().ok());

  Table table = MakeTable(100, 2);
  ProfileClient client("127.0.0.1", worker.port());
  RemoteProfileOptions one_shot;
  one_shot.max_attempts = 1;
  RemoteOutcome outcome;
  Status s = client.Profile("t", table, one_shot, &outcome);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_EQ(worker.Metrics().rpc_sheds, 1);
  worker.Stop();
}

TEST(Worker, RejectsFingerprintMismatch) {
  WorkerDaemon worker(WorkerOptions{});
  ASSERT_TRUE(worker.Start().ok());

  // Hand-build a request whose claimed fingerprint is wrong.
  Table table = MakeTable(100, 3);
  std::ostringstream os;
  ASSERT_TRUE(WriteTable(table, os).ok());
  ProfileRequest req;
  req.fingerprint = TableFingerprint(table) ^ 1;
  req.table_name = "t";
  req.table_bytes = os.str();
  std::string payload;
  EncodeProfileRequest(req, &payload);

  RpcClient rpc("127.0.0.1", worker.port());
  RpcReply reply;
  ASSERT_TRUE(rpc.Call(RpcMethod::kProfile, payload, 5000, &reply).ok());
  EXPECT_EQ(reply.remote.code(), Status::Code::kInvalidArgument);
  worker.Stop();
}

// ------------------------------------------------------------------ router

class RouterTest : public ::testing::Test {
 protected:
  // Two workers splitting the shard space in half, fronted by a router.
  void StartFleet(RouterOptions router_options = {}) {
    WorkerOptions w1;
    w1.shard_first = 0;
    w1.shard_last = 7;
    worker1_ = std::make_unique<WorkerDaemon>(w1);
    ASSERT_TRUE(worker1_->Start().ok());

    WorkerOptions w2;
    w2.shard_first = 8;
    w2.shard_last = 15;
    worker2_ = std::make_unique<WorkerDaemon>(w2);
    ASSERT_TRUE(worker2_->Start().ok());

    router_options.workers = {
        {"127.0.0.1", worker1_->port(), 0, 7},
        {"127.0.0.1", worker2_->port(), 8, 15},
    };
    router_ = std::make_unique<Router>(router_options);
    ASSERT_TRUE(router_->Start().ok());
  }

  void TearDown() override {
    if (router_ != nullptr) router_->Stop();
    if (worker1_ != nullptr) worker1_->Stop();
    if (worker2_ != nullptr) worker2_->Stop();
  }

  std::unique_ptr<WorkerDaemon> worker1_;
  std::unique_ptr<WorkerDaemon> worker2_;
  std::unique_ptr<Router> router_;
};

TEST_F(RouterTest, RoutesByFingerprintShard) {
  StartFleet();
  ProfileClient client("127.0.0.1", router_->port());
  uint64_t seed = 10;
  for (int i = 0; i < 2; ++i) {
    Table low = TableForShards(0, 7, &seed);
    RemoteOutcome outcome;
    ASSERT_TRUE(
        client.Profile("low", low, RemoteProfileOptions{}, &outcome).ok());
    EXPECT_EQ(outcome.served_by, "owner-00-07");

    Table high = TableForShards(8, 15, &seed);
    ASSERT_TRUE(
        client.Profile("high", high, RemoteProfileOptions{}, &outcome).ok());
    EXPECT_EQ(outcome.served_by, "owner-08-15");
  }
  ServiceMetrics::Snapshot m = router_->Metrics();
  EXPECT_GE(m.rpcs_in, 4);
  EXPECT_GE(m.rpcs_out, 4);
  EXPECT_GT(m.rpc_bytes_in, 0);
  EXPECT_GT(m.rpc_bytes_out, 0);
}

TEST_F(RouterTest, HealthAggregatesTheFleet) {
  StartFleet();
  ProfileClient client("127.0.0.1", router_->port());
  HealthInfo info;
  ASSERT_TRUE(client.Health(&info).ok());
  EXPECT_EQ(info.role, HealthInfo::Role::kRouter);
  EXPECT_EQ(info.workers_total, 2);
  EXPECT_EQ(info.workers_up, 2);
}

TEST_F(RouterTest, QuotaShedsAndRecovers) {
  RouterOptions options;
  options.quota_tokens_per_second = 20;
  options.quota_burst = 2;
  options.retry_after_millis = 30;
  StartFleet(options);

  Table table = MakeTable(100, 30);
  ProfileClient client("127.0.0.1", router_->port());

  // Burn the burst, then the one-shot request is shed...
  RemoteProfileOptions opts;
  opts.client_id = "greedy";
  for (int i = 0; i < 2; ++i) {
    RemoteOutcome outcome;
    ASSERT_TRUE(client.Profile("t", table, opts, &outcome).ok());
  }
  RemoteProfileOptions one_shot = opts;
  one_shot.max_attempts = 1;
  RemoteOutcome shed;
  Status s = client.Profile("t", table, one_shot, &shed);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  EXPECT_GE(router_->Metrics().rpc_sheds, 1);

  // ...while other clients are unaffected...
  RemoteProfileOptions other = opts;
  other.client_id = "patient";
  other.max_attempts = 1;
  RemoteOutcome ok_outcome;
  EXPECT_TRUE(client.Profile("t", table, other, &ok_outcome).ok());

  // ...and the greedy client succeeds once it waits out the retry-after.
  RemoteProfileOptions retrying = opts;
  retrying.max_attempts = 8;
  RemoteOutcome eventually;
  EXPECT_TRUE(client.Profile("t", table, retrying, &eventually).ok());
  EXPECT_GE(eventually.sheds, 1);
}

TEST_F(RouterTest, FailsOverWhenTheOwnerDies) {
  RouterOptions options;
  options.heartbeat_period_millis = 50;
  options.retry_base_millis = 5;
  StartFleet(options);

  uint64_t seed = 40;
  Table table = TableForShards(8, 15, &seed);
  ProfileClient client("127.0.0.1", router_->port());

  // Baseline through the owner.
  RemoteOutcome before;
  ASSERT_TRUE(
      client.Profile("t", table, RemoteProfileOptions{}, &before).ok());
  EXPECT_EQ(before.served_by, "owner-08-15");

  // Kill the owner; the router must fail the forward over to the survivor,
  // which serves the non-owned shard without persisting it.
  worker2_->Stop();
  RemoteOutcome after;
  Status s = client.Profile("t", table, RemoteProfileOptions{}, &after);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(after.served_by, "owner-00-07");
  ExpectSameResult(before.result, after.result);
  EXPECT_GE(router_->Metrics().rpc_retries, 1);

  // The survivor never wrote the foreign shard: ownership is preserved.
  EXPECT_FALSE(worker1_->service().catalog().Lookup(after.fingerprint,
                                                    nullptr));
}

TEST_F(RouterTest, ShutdownDrainsCleanly) {
  StartFleet();
  ProfileClient client("127.0.0.1", router_->port());
  Table table = MakeTable(100, 50);
  RemoteOutcome outcome;
  ASSERT_TRUE(
      client.Profile("t", table, RemoteProfileOptions{}, &outcome).ok());
  router_->Stop();
  // A post-shutdown call fails at transport or with Unavailable — never
  // hangs.
  RemoteProfileOptions one_shot;
  one_shot.max_attempts = 1;
  one_shot.deadline_millis = 1000;
  RemoteOutcome late;
  EXPECT_FALSE(client.Profile("t", table, one_shot, &late).ok());
}

}  // namespace
}  // namespace gordian
