// Tests for the profiling service stack: ThreadPool, JobScheduler, and
// ProfilingService (concurrent discovery, catalog caching, coalescing,
// cancellation, timeouts, metrics).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/gordian.h"
#include "datagen/synthetic.h"
#include "engine/advisor.h"
#include "engine/row_store.h"
#include "service/job_scheduler.h"
#include "service/metrics.h"
#include "service/profiling_service.h"
#include "common/thread_pool.h"
#include "table/fingerprint.h"

namespace gordian {
namespace {

Table MakeTable(int64_t rows, uint64_t seed, int columns = 5) {
  SyntheticSpec spec = UniformSpec(columns, rows, 32, 0.5, seed);
  spec.columns[0].cardinality = 256;
  spec.columns[2].cardinality = 64;
  spec.planted_keys.push_back({0, 2});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

// A table whose discovery visits enough prefix-tree nodes to take real time
// and to trip the amortized budget checks (which fire every 4096 visits):
// many moderately low-cardinality uncorrelated columns maximize the
// non-key search space.
Table MakeExpensiveTable(uint64_t seed) {
  SyntheticSpec spec = UniformSpec(14, 4000, 6, 0.0, seed);
  spec.planted_keys.push_back({0, 1, 2, 3, 4, 5, 6, 7});
  Table t;
  Status s = GenerateSynthetic(spec, &t);
  EXPECT_TRUE(s.ok());
  return t;
}

void ExpectSameResult(const KeyDiscoveryResult& a,
                      const KeyDiscoveryResult& b) {
  EXPECT_EQ(a.no_keys, b.no_keys);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.incomplete, b.incomplete);
  ASSERT_EQ(a.keys.size(), b.keys.size());
  for (size_t i = 0; i < a.keys.size(); ++i) {
    EXPECT_EQ(a.keys[i].attrs, b.keys[i].attrs);
    EXPECT_DOUBLE_EQ(a.keys[i].estimated_strength,
                     b.keys[i].estimated_strength);
    EXPECT_DOUBLE_EQ(a.keys[i].exact_strength, b.keys[i].exact_strength);
  }
  EXPECT_EQ(a.non_keys, b.non_keys);
}

// ---------------------------------------------------------------- ThreadPool

TEST(ThreadPool, RunsEveryTaskAndDrainsOnDestroy) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1); });
    }
    // Destructor must finish all 200, started or not.
  }
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPool, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::promise<int> value;
  pool.Submit([&value] { value.set_value(42); });
  EXPECT_EQ(value.get_future().get(), 42);
}

TEST(ThreadPool, TasksMaySubmitMoreTasks) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    pool.Submit([&] {
      ran.fetch_add(1);
      pool.Submit([&] { ran.fetch_add(1); });
    });
  }
  EXPECT_EQ(ran.load(), 2);
}

// ------------------------------------------------------------- JobScheduler

// Holds the scheduler's single worker inside a job body until released,
// making everything submitted meanwhile deterministically queued.
class Gate {
 public:
  std::function<void(const JobContext&)> Body() {
    return [this](const JobContext&) {
      entered_.set_value();
      released_.get_future().wait();
    };
  }
  void AwaitEntered() { entered_.get_future().wait(); }
  void Release() { released_.set_value(); }

 private:
  std::promise<void> entered_;
  std::promise<void> released_;
};

TEST(JobScheduler, PriorityOrderWithFifoTiesOnOneWorker) {
  JobScheduler scheduler(1);
  Gate gate;
  scheduler.Submit(gate.Body());
  gate.AwaitEntered();

  std::vector<char> order;
  std::mutex order_mu;
  auto record = [&](char tag) {
    return [&order, &order_mu, tag](const JobContext&) {
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(tag);
    };
  };
  scheduler.Submit(record('a'), /*priority=*/0);
  scheduler.Submit(record('b'), /*priority=*/5);
  scheduler.Submit(record('c'), /*priority=*/5);
  scheduler.Submit(record('d'), /*priority=*/1);
  gate.Release();
  scheduler.WaitAll();
  EXPECT_EQ(order, (std::vector<char>{'b', 'c', 'd', 'a'}));
}

TEST(JobScheduler, CancelQueuedJobNeverRuns) {
  JobScheduler scheduler(1);
  Gate gate;
  scheduler.Submit(gate.Body());
  gate.AwaitEntered();

  std::atomic<bool> ran{false};
  JobId id = scheduler.Submit([&ran](const JobContext&) { ran = true; });
  EXPECT_EQ(scheduler.queue_depth(), 1);
  bool before_running = false;
  EXPECT_TRUE(scheduler.Cancel(id, &before_running));
  EXPECT_TRUE(before_running);
  JobInfo info = scheduler.Wait(id);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_TRUE(info.cancel_requested);
  gate.Release();
  scheduler.WaitAll();
  EXPECT_FALSE(ran.load());
  // Cancelling a terminal job is a no-op.
  EXPECT_FALSE(scheduler.Cancel(id));
}

TEST(JobScheduler, CancelRunningJobUnwindsCooperatively) {
  JobScheduler scheduler(1);
  std::promise<void> entered;
  JobId id = scheduler.Submit([&entered](const JobContext& ctx) {
    entered.set_value();
    while (!ctx.Cancelled()) {
      std::this_thread::yield();
    }
  });
  entered.get_future().wait();
  bool before_running = true;
  EXPECT_TRUE(scheduler.Cancel(id, &before_running));
  EXPECT_FALSE(before_running);
  JobInfo info = scheduler.Wait(id);
  EXPECT_EQ(info.state, JobState::kCancelled);
  EXPECT_GT(info.latency_seconds, 0.0);
}

TEST(JobScheduler, ThrowingBodyBecomesFailedJob) {
  JobScheduler scheduler(2);
  JobId id = scheduler.Submit([](const JobContext&) {
    throw std::runtime_error("boom");
  });
  JobInfo info = scheduler.Wait(id);
  EXPECT_EQ(info.state, JobState::kFailed);
  EXPECT_EQ(info.error, "boom");
}

TEST(JobScheduler, PollWaitAndForgetLifecycle) {
  JobScheduler scheduler(1);
  EXPECT_FALSE(scheduler.Poll(999).valid);
  EXPECT_FALSE(scheduler.Wait(999).valid);
  EXPECT_FALSE(scheduler.Forget(999));

  JobId id = scheduler.Submit([](const JobContext&) {});
  JobInfo info = scheduler.Wait(id);
  EXPECT_TRUE(info.valid);
  EXPECT_EQ(info.state, JobState::kSucceeded);
  EXPECT_TRUE(scheduler.Poll(id).valid);
  EXPECT_TRUE(scheduler.Forget(id));
  EXPECT_FALSE(scheduler.Poll(id).valid);
  EXPECT_FALSE(scheduler.Forget(id));
}

// --------------------------------------------------------- ProfilingService

TEST(ProfilingService, ConcurrentJobsMatchSequentialDiscovery) {
  constexpr int kTables = 5;
  std::vector<Table> tables;
  for (int i = 0; i < kTables; ++i) {
    tables.push_back(MakeTable(600 + 50 * i, 100 + i));
  }

  std::vector<KeyDiscoveryResult> sequential;
  for (const Table& t : tables) sequential.push_back(FindKeys(t));

  ServiceOptions options;
  options.num_threads = 4;
  ProfilingService service(options);
  std::vector<JobId> ids;
  for (int i = 0; i < kTables; ++i) {
    ids.push_back(
        service.SubmitTable("t" + std::to_string(i), &tables[i]));
  }
  for (int i = 0; i < kTables; ++i) {
    ProfileOutcome out = service.Wait(ids[i]);
    EXPECT_EQ(out.info.state, JobState::kSucceeded);
    EXPECT_FALSE(out.cache_hit);
    EXPECT_EQ(out.table_name, "t" + std::to_string(i));
    EXPECT_EQ(out.fingerprint, TableFingerprint(tables[i]));
    ExpectSameResult(out.result, sequential[i]);
  }
  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.jobs_submitted, kTables);
  EXPECT_EQ(m.jobs_completed, kTables);
  EXPECT_EQ(m.cache_misses, kTables);
  EXPECT_EQ(m.cache_hits, 0);
}

TEST(ProfilingService, SecondSubmissionOfUnchangedTableIsCacheHit) {
  Table t = MakeTable(800, 7);
  ProfilingService service;
  ProfileOutcome cold = service.Wait(service.SubmitTable("orders", &t));
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_TRUE(service.catalog().Contains(cold.fingerprint));

  ProfileOutcome warm = service.Wait(service.SubmitTable("orders", &t));
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_EQ(warm.fingerprint, cold.fingerprint);
  ExpectSameResult(warm.result, cold.result);

  // An identical copy of the table (distinct object, same content) also
  // hits: the fingerprint keys on content, not identity.
  Table copy = MakeTable(800, 7);
  ProfileOutcome alias = service.Wait(service.SubmitTable("orders2", &copy));
  EXPECT_TRUE(alias.cache_hit);

  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.cache_hits, 2);
  EXPECT_EQ(m.cache_misses, 1);

  // use_catalog = false forces a re-profile.
  ProfileJobOptions no_cache;
  no_cache.use_catalog = false;
  ProfileOutcome forced =
      service.Wait(service.SubmitTable("orders", &t, no_cache));
  EXPECT_FALSE(forced.cache_hit);
  ExpectSameResult(forced.result, cold.result);
}

TEST(ProfilingService, SameTableObjectInFlightCoalesces) {
  // One worker: the blocker occupies it, so the two submissions for `t`
  // are deterministically still queued/running when the third arrives.
  Table blocker = MakeTable(2000, 40);
  Table t = MakeTable(2000, 41);
  ServiceOptions options;
  options.num_threads = 1;
  ProfilingService service(options);
  JobId b = service.SubmitTable("blocker", &blocker);
  JobId first = service.SubmitTable("t", &t);
  JobId second = service.SubmitTable("t-again", &t);
  EXPECT_GT(first, 0);
  EXPECT_LT(second, 0);  // alias ids live in the negative space
  EXPECT_FALSE(service.Cancel(second));  // aliases cannot be cancelled

  ProfileOutcome a = service.Wait(first);
  ProfileOutcome c = service.Wait(second);
  EXPECT_TRUE(c.coalesced);
  EXPECT_FALSE(a.coalesced);
  EXPECT_EQ(c.table_name, "t-again");
  EXPECT_EQ(c.fingerprint, a.fingerprint);
  ExpectSameResult(c.result, a.result);
  service.Wait(b);

  ServiceMetrics::Snapshot m = service.Metrics();
  EXPECT_EQ(m.coalesced_jobs, 1);
  EXPECT_EQ(m.jobs_submitted, 3);
  // Only two discoveries actually ran.
  EXPECT_EQ(m.jobs_completed, 2);
}

TEST(ProfilingService, CancelQueuedJobReturnsIncompleteAndLeavesNoTrace) {
  Table blocker = MakeTable(2000, 50);
  Table t = MakeTable(500, 51);
  ServiceOptions options;
  options.num_threads = 1;
  ProfilingService service(options);
  JobId b = service.SubmitTable("blocker", &blocker);
  JobId id = service.SubmitTable("victim", &t);
  EXPECT_TRUE(service.Cancel(id));
  ProfileOutcome out = service.Wait(id);
  EXPECT_EQ(out.info.state, JobState::kCancelled);
  EXPECT_TRUE(out.result.incomplete);
  EXPECT_EQ(out.result.incomplete_reason, AbortReason::kCancelled);
  EXPECT_TRUE(out.result.keys.empty());
  service.Wait(b);
  service.WaitAll();
  // The victim never ran, so only the blocker's entry is in the catalog.
  EXPECT_EQ(service.catalog().size(), 1);
  EXPECT_FALSE(service.catalog().Contains(TableFingerprint(t)));
  EXPECT_EQ(service.Metrics().jobs_cancelled, 1);
}

TEST(ProfilingService, CancelMidDiscoveryReturnsIncompleteResult) {
  Table t = MakeExpensiveTable(60);
  ProfilingService service;
  JobId id = service.SubmitTable("big", &t);
  // Wait for the body to actually start before cancelling.
  while (service.Poll(id).state == JobState::kQueued) {
    std::this_thread::yield();
  }
  ASSERT_TRUE(service.Cancel(id));
  ProfileOutcome out = service.Wait(id);
  ASSERT_EQ(out.info.state, JobState::kCancelled);
  EXPECT_TRUE(out.result.incomplete);
  EXPECT_EQ(out.result.incomplete_reason, AbortReason::kCancelled);
  EXPECT_TRUE(out.result.keys.empty());
  // An aborted run must not be cached.
  EXPECT_EQ(service.catalog().size(), 0);
}

TEST(ProfilingService, TimeoutProducesIncompleteUncachedResult) {
  Table t = MakeExpensiveTable(61);
  ProfilingService service;
  ProfileJobOptions job;
  job.timeout_seconds = 1e-4;
  ProfileOutcome out = service.Wait(service.SubmitTable("slow", &t, job));
  EXPECT_EQ(out.info.state, JobState::kSucceeded);  // ran to (early) return
  EXPECT_TRUE(out.result.incomplete);
  EXPECT_EQ(out.result.incomplete_reason, AbortReason::kTimeBudget);
  EXPECT_TRUE(out.result.keys.empty());
  EXPECT_EQ(service.catalog().size(), 0);

  // The same submission without the timeout completes and is cached.
  ProfileOutcome full = service.Wait(service.SubmitTable("slow", &t));
  EXPECT_FALSE(full.result.incomplete);
  EXPECT_TRUE(service.catalog().Contains(full.fingerprint));
}

TEST(ProfilingService, SharedCatalogServesAcrossServices) {
  Table t = MakeTable(700, 70);
  KeyCatalog catalog;
  ServiceOptions options;
  options.catalog = &catalog;
  ProfileOutcome cold;
  {
    ProfilingService first(options);
    cold = first.Wait(first.SubmitTable("t", &t));
    EXPECT_FALSE(cold.cache_hit);
  }
  ProfilingService second(options);
  ProfileOutcome warm = second.Wait(second.SubmitTable("t", &t));
  EXPECT_TRUE(warm.cache_hit);
  ExpectSameResult(warm.result, cold.result);
}

TEST(ProfilingService, UnknownJobIdsAreRejected) {
  ProfilingService service;
  EXPECT_FALSE(service.Poll(12345).valid);
  EXPECT_FALSE(service.Wait(12345).info.valid);
  EXPECT_FALSE(service.Cancel(12345));
}

TEST(ProfilingService, CsvJobFailureCarriesParserError) {
  ProfilingService service;
  JobId id = service.SubmitCsv("missing", "/no/such/file.csv", CsvOptions{});
  ProfileOutcome out = service.Wait(id);
  EXPECT_EQ(out.info.state, JobState::kFailed);
  EXPECT_NE(out.info.error.find("/no/such/file.csv"), std::string::npos);
  EXPECT_EQ(service.Metrics().jobs_failed, 1);
}

// --------------------------------------------------- advisor + metrics glue

TEST(Advisor, CatalogBackedRecommendationSkipsRediscovery) {
  Table t = MakeTable(600, 80);
  RowStore store(t);
  KeyCatalog catalog;
  Planner first = BuildRecommendedIndexes(t, store, &catalog);
  EXPECT_EQ(catalog.size(), 1);
  ASSERT_FALSE(first.indexes().empty());

  // Second call is served from the catalog and builds the same index set.
  Planner second = BuildRecommendedIndexes(t, store, &catalog);
  ASSERT_EQ(second.indexes().size(), first.indexes().size());
  EXPECT_EQ(catalog.size(), 1);

  // Matches the result-driven overload exactly.
  Planner direct = BuildRecommendedIndexes(t, store, FindKeys(t));
  EXPECT_EQ(direct.indexes().size(), first.indexes().size());
}

TEST(ServiceMetrics, FormatListsEveryCounter) {
  ServiceMetrics metrics;
  metrics.OnSubmitted();
  metrics.OnCompleted();
  metrics.OnCacheMiss();
  metrics.OnJobFinished(0.25);
  ServiceMetrics::Snapshot s = metrics.Read();
  EXPECT_EQ(s.jobs_submitted, 1);
  EXPECT_EQ(s.finished(), 1);
  EXPECT_DOUBLE_EQ(s.mean_latency_seconds(), 0.25);
  EXPECT_DOUBLE_EQ(s.max_latency_seconds, 0.25);
  std::string text = FormatServiceMetrics(s);
  for (const char* needle :
       {"jobs submitted", "jobs completed", "jobs cancelled", "jobs failed",
        "cache hits", "cache misses", "coalesced jobs", "queue depth",
        "running jobs", "cache hit rate", "mean latency", "max latency"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace gordian
